"""Pinning tests for the structure-of-arrays simulator core (PR 6).

1. **Engine byte-identity**: ``engine="soa"`` (the default) must replay
   the object-graph loop bit for bit — records, decisions, preemptions,
   extras, and metric floats — across the scheduler comparison set and
   every disruption regime (node failures, correlated rack shocks,
   drains, checkpoint/migrate restart policies, walltime enforcement,
   dependency DAGs, windowed planning).
2. **Pinned digests**: a seeded cell matrix hashes to digests generated
   by the object engine at the moment the SoA core landed; both engines
   must keep producing them, so drift in *either* is caught even after
   one of them changes.
3. **Parallel identity**: a serial SoA sweep and a 2-worker SoA sweep
   of the same cells digest identically (the satellite CI smoke runs
   the same check via the CLI).
4. **Engine plumbing**: the engine flag is validated, reaches the
   matrix engine, and is deliberately *not* part of the cell identity.
"""

import pytest

from repro.experiments.parallel import expand_cells, run_cells
from repro.experiments.runner import run_single
from repro.schedulers.registry import create_scheduler
from repro.sim.disruptions import DisruptionSpec
from repro.sim.simulator import HPCSimulator, SimulationError, simulate
from repro.sim.topology import ClusterTopology
from repro.workloads.dags import layered_dag_workload
from repro.workloads.generator import generate_workload

from tests.test_windowed_regression import run_digest

SPEC = DisruptionSpec(
    mtbf=40_000.0,
    mttr=4_000.0,
    seed=7,
    drain_every=120_000.0,
    drain_nodes=24,
    drain_duration=10_000.0,
    drain_lead=5_000.0,
)
CORRELATED = DisruptionSpec(
    mtbf=60_000.0, mttr=3_000.0, rack_mtbf=200_000.0, seed=11
)
TOPOLOGY = ClusterTopology(n_nodes=256, rack_size=16, racks_per_switch=4)

#: (scenario, n_jobs, scheduler, extra run_single kwargs) — one cell
#: per behavioural regime the engines must agree on.
IDENTITY_CELLS = [
    pytest.param("heterogeneous_mix", 120, "fcfs", {}, id="fcfs"),
    pytest.param("heterogeneous_mix", 120, "sjf", {}, id="sjf"),
    pytest.param(
        "heterogeneous_mix", 100, "ortools_like", {}, id="optimizer"
    ),
    pytest.param(
        "heterogeneous_mix", 100, "claude-3.7-sim", {}, id="llm-claude"
    ),
    pytest.param(
        "heterogeneous_mix", 100, "o4-mini-sim", {}, id="llm-o4"
    ),
    pytest.param(
        "heterogeneous_mix",
        80,
        "ortools_like",
        {"anneal_window": 8},
        id="windowed",
    ),
    pytest.param(
        "adversarial",
        120,
        "claude-3.7-sim",
        {"enforce_walltime": True},
        id="walltime-kills",
    ),
    pytest.param(
        "checkpoint_stress",
        120,
        "fcfs",
        {
            "disruptions": SPEC,
            "restart_policy": "checkpoint",
            "checkpoint_interval": 900.0,
        },
        id="disrupted-checkpoint",
    ),
    pytest.param(
        "rack_storm",
        120,
        "sjf",
        {
            "disruptions": CORRELATED,
            "topology": TOPOLOGY,
            "restart_policy": "preempt_migrate",
            "checkpoint_interval": 1200.0,
        },
        id="correlated-migrate",
    ),
    pytest.param(
        "drain_window",
        100,
        "ortools_like",
        {"disruptions": SPEC, "enforce_walltime": True},
        id="drained-walltime",
    ),
]


class TestEngineByteIdentity:
    @pytest.mark.parametrize("scenario,n,scheduler,kw", IDENTITY_CELLS)
    def test_engines_identical(self, scenario, n, scheduler, kw):
        runs = {
            engine: run_single(
                scenario,
                n,
                scheduler,
                workload_seed=3,
                scheduler_seed=5,
                engine=engine,
                **kw,
            )
            for engine in ("object", "soa")
        }
        a, b = runs["object"].result, runs["soa"].result
        assert a.records == b.records
        assert a.decisions == b.decisions
        assert a.preemptions == b.preemptions
        assert a.extras == b.extras
        assert run_digest(runs["object"]) == run_digest(runs["soa"])

    def test_dependency_dag_identical(self):
        jobs = layered_dag_workload(24, seed=2, n_layers=4)
        results = {
            engine: simulate(
                list(jobs), create_scheduler("fcfs"), engine=engine
            )
            for engine in ("object", "soa")
        }
        a, b = results["object"], results["soa"]
        assert a.records == b.records
        assert a.decisions == b.decisions

    def test_decision_budget_identical(self):
        """Both engines enforce ``max_decisions`` at the same count."""
        jobs = generate_workload("homogeneous_short", 8, seed=0)
        for engine in ("object", "soa"):
            sim = HPCSimulator(
                jobs=list(jobs),
                scheduler=create_scheduler("fcfs"),
                max_decisions=3,
                engine=engine,
            )
            with pytest.raises(SimulationError, match="budget exhausted \\(3\\)"):
                sim.run()


#: SHA-256 digests generated by the *object* engine at the commit that
#: introduced the SoA core; ``run_single(scenario, n, scheduler,
#: workload_seed=ws, scheduler_seed=ss, **kw)`` on the default engine
#: must keep reproducing them byte for byte.
PINNED_CELLS = [
    pytest.param(
        "heterogeneous_mix", 60, "fcfs", 0, 0, {},
        "71af564cdf0415f5399d3ab87e34a55bed38b36bd15d017530cf30208d37646d",
        id="fcfs",
    ),
    pytest.param(
        "heterogeneous_mix", 60, "sjf", 1, 0, {},
        "d0439bb4de84d38535f2759ab92939a76a77f7076020a847a3461b7efb4439ff",
        id="sjf",
    ),
    pytest.param(
        "bursty_idle", 50, "ortools_like", 0, 2, {},
        "a6b69ec95af0b74869e7a48bfedd4b825fbae1367e22d0ef6ed7326194414648",
        id="optimizer",
    ),
    pytest.param(
        "adversarial", 50, "claude-3.7-sim", 3, 0,
        {"enforce_walltime": True},
        "9218b4604e54df45bfddf9d33ff845ae53cc3e27de15e776ac6f4129620942c4",
        id="llm-walltime",
    ),
    pytest.param(
        "checkpoint_stress", 80, "fcfs", 0, 0,
        {
            "disruptions": SPEC,
            "restart_policy": "checkpoint",
            "checkpoint_interval": 900.0,
        },
        "0850137d018b910d6c402b5ab0bcc0e592323821687cd78c6ba520898d50aa1a",
        id="disrupted",
    ),
    pytest.param(
        "rack_storm", 80, "sjf", 2, 0,
        {
            "disruptions": CORRELATED,
            "topology": TOPOLOGY,
            "restart_policy": "preempt_migrate",
            "checkpoint_interval": 1200.0,
        },
        "e35d3d707fa9dc5e6c20db72977ed8e33bba312b1b43e5db1ad4e4d8ca77d406",
        id="correlated",
    ),
]


class TestPinnedDigests:
    @pytest.mark.parametrize(
        "scenario,n,scheduler,ws,ss,kw,expected", PINNED_CELLS
    )
    def test_digest_pinned(self, scenario, n, scheduler, ws, ss, kw, expected):
        run = run_single(
            scenario, n, scheduler, workload_seed=ws, scheduler_seed=ss, **kw
        )
        assert run_digest(run) == expected


class TestParallelIdentity:
    def test_serial_vs_two_workers(self):
        cells = expand_cells(
            ["heterogeneous_mix"],
            [40],
            ["fcfs", "sjf"],
            workload_seeds=(0, 1),
            engine="soa",
        )
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=2)
        assert [run_digest(r) for r in serial] == [
            run_digest(r) for r in parallel
        ]


class TestEnginePlumbing:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            HPCSimulator(
                jobs=[], scheduler=create_scheduler("fcfs"), engine="bogus"
            )

    def test_engine_not_part_of_cell_identity(self):
        """Swapping digest-identical engines must never fork an
        experiment: the cell key ignores the engine field."""
        soa = expand_cells(["heterogeneous_mix"], [30], ["fcfs"])
        obj = expand_cells(
            ["heterogeneous_mix"], [30], ["fcfs"], engine="object"
        )
        assert soa[0].key == obj[0].key
        assert soa[0].engine == "soa" and obj[0].engine == "object"

    def test_simulate_forwards_engine(self):
        jobs = generate_workload("homogeneous_short", 30, seed=0)
        a = simulate(list(jobs), create_scheduler("fcfs"), engine="object")
        b = simulate(list(jobs), create_scheduler("fcfs"))  # soa default
        assert a.records == b.records
