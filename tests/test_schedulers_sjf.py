"""Unit tests for Shortest Job First."""


from repro.schedulers.sjf import SJFScheduler

from tests.conftest import make_job, run_sim


class TestStrictSJF:
    def test_shortest_first_when_all_queued(self):
        jobs = [
            make_job(1, duration=100.0, nodes=8),
            make_job(2, duration=10.0, nodes=8),
            make_job(3, duration=50.0, nodes=8),
        ]
        result = run_sim(jobs, SJFScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[2] == 0.0
        assert starts[3] == 10.0
        assert starts[1] == 60.0

    def test_long_jobs_starve_while_shorts_arrive(self):
        # A stream of short jobs keeps beating the long job: SJF's
        # classic fairness failure (paper §3.3).
        jobs = [make_job(1, submit=0.0, duration=100.0, nodes=8)]
        jobs += [
            make_job(i, submit=0.0, duration=10.0, nodes=8)
            for i in range(2, 6)
        ]
        result = run_sim(jobs, SJFScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[1] == 40.0  # after every short job

    def test_strict_delays_when_shortest_blocked(self):
        # Shortest job needs 8 nodes (blocked); a longer 1-node job
        # could run, but strict SJF refuses to skip.
        jobs = [
            make_job(1, submit=0.0, duration=50.0, nodes=4),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
            make_job(3, submit=1.0, duration=20.0, nodes=1),
        ]
        result = run_sim(jobs, SJFScheduler(strict=True), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[2] == 50.0
        # Job 3 then waits for job 2 (the shortest went first).
        assert starts[3] == 60.0

    def test_firstfit_variant_skips_blocked_shortest(self):
        jobs = [
            make_job(1, submit=0.0, duration=50.0, nodes=4),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
            make_job(3, submit=1.0, duration=20.0, nodes=1),
        ]
        result = run_sim(jobs, SJFScheduler(strict=False), nodes=8, memory=64.0)
        assert result.record_for(3).start_time == 1.0

    def test_uses_walltime_estimates_by_default(self):
        # True durations reversed vs walltimes; SJF must follow walltime.
        jobs = [
            make_job(1, duration=10.0, walltime=100.0, nodes=8),
            make_job(2, duration=90.0, walltime=20.0, nodes=8),
        ]
        result = run_sim(jobs, SJFScheduler(), nodes=8, memory=64.0)
        assert result.record_for(2).start_time == 0.0

    def test_duration_mode(self):
        jobs = [
            make_job(1, duration=10.0, walltime=100.0, nodes=8),
            make_job(2, duration=90.0, walltime=20.0, nodes=8),
        ]
        result = run_sim(
            jobs, SJFScheduler(use_walltime=False), nodes=8, memory=64.0
        )
        assert result.record_for(1).start_time == 0.0

    def test_names(self):
        assert SJFScheduler(strict=True).name == "sjf"
        assert SJFScheduler(strict=False).name == "sjf_firstfit"

    def test_tie_breaks_by_job_id(self):
        jobs = [
            make_job(2, duration=10.0, nodes=8),
            make_job(1, duration=10.0, nodes=8),
        ]
        result = run_sim(jobs, SJFScheduler(), nodes=8, memory=64.0)
        assert result.record_for(1).start_time == 0.0
        assert result.record_for(2).start_time == 10.0
