"""Unit tests for the §3.2 objectives against hand-computed values."""

import pytest

from repro.metrics.objectives import (
    METRIC_NAMES,
    average_turnaround_time,
    average_wait_time,
    compute_metrics,
    makespan,
    memory_utilization,
    node_utilization,
    per_job_fairness,
    per_user_fairness,
    throughput,
)
from repro.sim.schedule import JobRecord, ScheduleResult

from tests.conftest import make_job


@pytest.fixture
def simple_schedule():
    """Two jobs on an 8-node/64 GB cluster:

    job 1: submit 0, start 0, duration 10, 4 nodes, 16 GB (user a)
    job 2: submit 0, start 10, duration 10, 4 nodes, 16 GB (user b)
    """
    records = [
        JobRecord(make_job(1, duration=10.0, nodes=4, memory=16.0, user="a"), 0.0, 10.0),
        JobRecord(make_job(2, duration=10.0, nodes=4, memory=16.0, user="b"), 10.0, 20.0),
    ]
    return ScheduleResult(
        records=records, decisions=[], total_nodes=8, total_memory_gb=64.0,
        scheduler_name="crafted",
    )


class TestHandComputed:
    def test_makespan(self, simple_schedule):
        assert makespan(simple_schedule.to_arrays()) == 20.0

    def test_average_wait(self, simple_schedule):
        # waits: 0 and 10 → mean 5
        assert average_wait_time(simple_schedule.to_arrays()) == 5.0

    def test_average_turnaround(self, simple_schedule):
        # turnarounds: 10 and 20 → mean 15
        assert average_turnaround_time(simple_schedule.to_arrays()) == 15.0

    def test_throughput(self, simple_schedule):
        # 2 jobs over window [min start = 0, max end = 20] → 0.1 jobs/s
        assert throughput(simple_schedule.to_arrays()) == pytest.approx(0.1)

    def test_node_utilization(self, simple_schedule):
        # work = 2 × 4×10 = 80 node-s over 8 × 20 = 160 → 0.5
        arrays = simple_schedule.to_arrays()
        assert node_utilization(arrays, 8) == pytest.approx(0.5)

    def test_memory_utilization(self, simple_schedule):
        # 2 × 16×10 = 320 GB-s over 64 × 20 = 1280 → 0.25
        arrays = simple_schedule.to_arrays()
        assert memory_utilization(arrays, 64.0) == pytest.approx(0.25)

    def test_wait_fairness(self, simple_schedule):
        # waits [0, 10]: J = 100 / (2 × 100) = 0.5
        assert per_job_fairness(simple_schedule.to_arrays()) == pytest.approx(0.5)

    def test_user_fairness(self, simple_schedule):
        # per-user means [0, 10] → same 0.5
        assert per_user_fairness(simple_schedule.to_arrays()) == pytest.approx(0.5)

    def test_user_fairness_aggregates_by_user(self):
        records = [
            JobRecord(make_job(1, user="a"), 0.0, 100.0),
            JobRecord(make_job(2, user="a"), 20.0, 120.0),
            JobRecord(make_job(3, user="b"), 10.0, 110.0),
        ]
        res = ScheduleResult(records, [], 8, 64.0)
        # user a mean wait = 10, user b = 10 → perfect
        assert per_user_fairness(res.to_arrays()) == pytest.approx(1.0)


class TestEdgeCases:
    def test_empty_schedule(self):
        res = ScheduleResult([], [], 8, 64.0)
        arrays = res.to_arrays()
        assert makespan(arrays) == 0.0
        assert average_wait_time(arrays) == 0.0
        assert throughput(arrays) == 0.0
        assert node_utilization(arrays, 8) == 0.0
        assert per_job_fairness(arrays) == 1.0
        assert per_user_fairness(arrays) == 1.0

    def test_late_submission_offsets_makespan(self):
        records = [JobRecord(make_job(1, submit=100.0, duration=10.0), 100.0, 110.0)]
        res = ScheduleResult(records, [], 8, 64.0)
        assert makespan(res.to_arrays()) == 10.0


class TestComputeMetrics:
    def test_report_has_all_metrics(self, simple_schedule):
        report = compute_metrics(simple_schedule)
        assert set(report.values) == set(METRIC_NAMES)
        assert report.scheduler_name == "crafted"
        assert report.n_jobs == 2

    def test_report_getitem_and_dict(self, simple_schedule):
        report = compute_metrics(simple_schedule)
        assert report["makespan"] == 20.0
        assert report.as_dict()["throughput"] == pytest.approx(0.1)

    def test_utilization_bounded_for_real_runs(self):
        from repro.schedulers.fcfs import FCFSScheduler
        from tests.conftest import run_sim

        jobs = [make_job(i, submit=i * 1.0, duration=50.0, nodes=2) for i in range(1, 20)]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        report = compute_metrics(result)
        assert 0.0 < report["node_utilization"] <= 1.0
        assert 0.0 < report["memory_utilization"] <= 1.0
