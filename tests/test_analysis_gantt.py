"""Tests for the ASCII Gantt renderer and utilization sparkline."""

from repro.analysis.gantt import render_gantt, utilization_sparkline
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.schedule import JobRecord, ScheduleResult
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


def simple_result():
    records = [
        JobRecord(make_job(1, duration=50.0, nodes=4), 0.0, 50.0),
        JobRecord(make_job(2, submit=10.0, duration=40.0, nodes=4), 50.0, 90.0),
    ]
    return ScheduleResult(records, [], 8, 64.0)


class TestGantt:
    def test_one_row_per_job(self):
        text = render_gantt(simple_result())
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 jobs
        assert "job 1" in lines[1]
        assert "job 2" in lines[2]

    def test_queued_time_shown_as_dots(self):
        text = render_gantt(simple_result())
        job2_line = text.splitlines()[2]
        assert "." in job2_line  # waited 10..50
        assert "█" in job2_line

    def test_empty_schedule(self):
        assert render_gantt(ScheduleResult([], [], 8, 64.0)) == "(empty schedule)"

    def test_truncation(self):
        records = [
            JobRecord(make_job(i, duration=10.0, nodes=1), 0.0, 10.0)
            for i in range(1, 21)
        ]
        text = render_gantt(
            ScheduleResult(records, [], 64, 512.0), max_jobs=5
        )
        assert "15 more jobs not shown" in text

    def test_real_schedule_renders(self):
        jobs = generate_workload("bursty_idle", 20, seed=1)
        result = run_sim(jobs, FCFSScheduler())
        text = render_gantt(result, width=60)
        assert text.count("\n") >= 20

    def test_width_respected(self):
        text = render_gantt(simple_result(), width=40)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40


class TestSparkline:
    def test_full_load_is_full_blocks(self):
        records = [JobRecord(make_job(1, duration=100.0, nodes=8), 0.0, 100.0)]
        line = utilization_sparkline(
            ScheduleResult(records, [], 8, 64.0), width=10
        )
        assert line == "util |██████████|"

    def test_half_load(self):
        records = [JobRecord(make_job(1, duration=100.0, nodes=4), 0.0, 100.0)]
        line = utilization_sparkline(
            ScheduleResult(records, [], 8, 64.0), width=10
        )
        assert "▄" in line

    def test_empty(self):
        assert utilization_sparkline(
            ScheduleResult([], [], 8, 64.0)
        ) == "(empty schedule)"
