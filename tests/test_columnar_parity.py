"""Columnar decision fast path (PR 10): parity, no-copy, and tuning.

1. **Columnar/facade byte-identity**: every scheduler in
   :data:`COLUMNAR_SCHEDULERS` must produce bit-for-bit identical
   records, decisions, preemptions, and extras whether its decision
   kernel runs on :class:`ViewColumns` (the default) or on the legacy
   ``Job``-facade path (``use_columns=False``) — across clean,
   disrupted, correlated-topology, and drained/walltime regimes, plus
   windowed annealing.
2. **Zero-copy contract**: engine-built views share one per-run set of
   master arrays (the same :class:`JobColumns` object across every
   decision), hand-built views gather through the identity selector
   (columns *are* the masters), and every exposed column is read-only.
3. **Vectorized-predicate equivalence**: ``healthy_domain_mask`` is
   elementwise-identical to the scalar ``fits_healthy_domain`` on
   rack-, switch-group-, and cluster-scale node counts.
4. **Adaptive crossover**: ``QueueChurnCrossover`` lowers the
   scalar/vector rebuild threshold under bursty churn (stale-heavy
   scans) and recovers toward the all-live base, without ever touching
   an observable.
5. **Supersede-counter persistence**: a :class:`ShardedStore` reopened
   mid-sweep resumes its per-shard supersede counts from the manifest,
   so auto-compaction triggers at exactly the configured threshold
   across restarts.
"""

import json

import numpy as np
import pytest

from repro.experiments.storage import ShardedStore, shard_index
from repro.schedulers.base import BaseScheduler
from repro.schedulers.genetic import GeneticConfig
from repro.schedulers.optimizer import AnnealingConfig
from repro.schedulers.recovery import (
    domain_pressures,
    fits_healthy_domain,
    healthy_domain_mask,
)
from repro.schedulers.registry import (
    COLUMNAR_SCHEDULERS,
    create_scheduler,
    supports_columns,
)
from repro.sim.cluster import ResourcePool
from repro.sim.columns import (
    COLUMN_NAMES,
    JobColumns,
    QueueColumns,
    queue_columns_from_jobs,
)
from repro.sim.disruptions import (
    DisruptionSpec,
    DrainWindow,
    estimate_horizon,
)
from repro.sim.engine import QueueChurnCrossover
from repro.sim.simulator import SystemView, simulate
from repro.sim.topology import ClusterTopology
from repro.workloads.generator import generate_workload

from tests.conftest import make_job
from tests.test_storage_sharded import make_stored

SPEC = DisruptionSpec(
    mtbf=40_000.0,
    mttr=4_000.0,
    seed=7,
    drain_every=120_000.0,
    drain_nodes=24,
    drain_duration=10_000.0,
    drain_lead=5_000.0,
)
CORRELATED = DisruptionSpec(
    mtbf=60_000.0, mttr=3_000.0, rack_mtbf=200_000.0, seed=11
)
TOPOLOGY = ClusterTopology(n_nodes=256, rack_size=16, racks_per_switch=4)

#: The plan-based optimizers replan O(queue) per decision — and the
#: disrupted regimes replan on every kill/requeue — so their matrix
#: cells run smaller queues with lighter search budgets. The columnar
#: kernels under test (initial-order construction, population seeding)
#: run once per replanning event regardless of budget, so parity
#: coverage is unchanged; only the search depth shrinks.
_CHEAP_N = {"ortools_like": 30, "genetic": 30}
_CHEAP_KW = {
    "ortools_like": {
        "config": AnnealingConfig(
            base_iterations=20, per_job_iterations=1, max_iterations=60
        )
    },
    "genetic": {"config": GeneticConfig(population=6, generations=3)},
}


def run_twins(name, scenario, n, *, spec=None, topology=None, sched_kw=None,
              **sim_kw):
    """Run one cell columnar and facade; return both results."""
    jobs = generate_workload(scenario, n, seed=3)
    results = {}
    for use_columns in (True, False):
        cluster = ResourcePool(topology=topology)
        trace = None
        if spec is not None:
            trace = spec.build(
                n_nodes=cluster.total_nodes,
                horizon=estimate_horizon(jobs, cluster.total_nodes),
                topology=topology,
            )
        sched = create_scheduler(
            name, seed=5, use_columns=use_columns, **(sched_kw or {})
        )
        assert sched.use_columns is use_columns
        results[use_columns] = simulate(
            list(jobs),
            sched,
            cluster=cluster,
            disruptions=trace,
            **sim_kw,
        )
    return results[True], results[False]


def assert_identical(a, b):
    assert a.records == b.records
    assert a.decisions == b.decisions
    assert a.preemptions == b.preemptions
    assert a.extras == b.extras


#: (scenario, n_jobs, spec, topology, sim kwargs) — the behavioural
#: regimes every columnar kernel must agree with its facade twin on.
REGIMES = [
    pytest.param("heterogeneous_mix", 120, None, None, {}, id="clean"),
    pytest.param(
        "checkpoint_stress",
        100,
        SPEC,
        None,
        {"restart_policy": "checkpoint", "checkpoint_interval": 900.0},
        id="disrupted-checkpoint",
    ),
    pytest.param(
        "rack_storm",
        100,
        CORRELATED,
        TOPOLOGY,
        {"restart_policy": "preempt_migrate", "checkpoint_interval": 1200.0},
        id="correlated-topology",
    ),
    pytest.param(
        "drain_window",
        80,
        SPEC,
        None,
        {"enforce_walltime": True},
        id="drained-walltime",
    ),
]


class TestColumnarFacadeParity:
    @pytest.mark.parametrize("name", sorted(COLUMNAR_SCHEDULERS))
    @pytest.mark.parametrize("scenario,n,spec,topology,kw", REGIMES)
    def test_byte_identical(self, name, scenario, n, spec, topology, kw):
        n = min(n, _CHEAP_N.get(name, n))
        a, b = run_twins(
            name,
            scenario,
            n,
            spec=spec,
            topology=topology,
            sched_kw=_CHEAP_KW.get(name),
            **kw,
        )
        assert_identical(a, b)

    def test_windowed_annealer(self):
        a, b = run_twins(
            "ortools_like",
            "heterogeneous_mix",
            60,
            sched_kw={"anneal_window": 8},
        )
        assert_identical(a, b)

    def test_registry_capability_flags(self):
        for name in sorted(COLUMNAR_SCHEDULERS):
            assert supports_columns(name)
            assert create_scheduler(name).use_columns is True
            assert create_scheduler(name, use_columns=False).use_columns \
                is False
        assert not supports_columns("random")
        sched = create_scheduler("random")
        assert sched.supports_columns is False
        # Forcing columns on a facade-only scheduler stays facade: the
        # flag is a capability gate, not an override.
        assert sched.use_columns is False


class CapturingFCFS(BaseScheduler):
    """Minimal scheduler capturing the columnar surface per decision."""

    name = "capturing-fcfs"

    def __init__(self):
        super().__init__()
        self.masters = []
        self.view_cols = []

    def decide(self, view):
        from repro.sim.actions import Delay, StartJob

        cols = view.columns()
        self.view_cols.append(cols)
        self.masters.append(cols.masters)
        assert view.columns() is cols  # cached on the view
        if cols.n and cols.fits_at(0):
            return StartJob(cols.id_at(0))
        return Delay


class TestZeroCopy:
    def test_engine_views_share_one_master_set(self):
        jobs = generate_workload("heterogeneous_mix", 60, seed=1)
        sched = CapturingFCFS()
        simulate(list(jobs), sched)
        assert len(sched.masters) > 10
        # One JobColumns per run, shared by every view — identity, not
        # just equality, so there is provably zero per-decision copying
        # of the master arrays.
        assert len({id(m) for m in sched.masters}) == 1
        masters = sched.masters[0]
        for cols in sched.view_cols:
            for name in COLUMN_NAMES:
                assert np.shares_memory(
                    getattr(cols.masters, name), getattr(masters, name)
                )

    def test_masters_and_columns_are_read_only(self):
        jobs = [make_job(i, nodes=2) for i in range(1, 5)]
        cols = queue_columns_from_jobs(jobs)
        for name in COLUMN_NAMES:
            arr = getattr(cols.masters, name)
            assert not arr.flags.writeable
            assert not cols.col(name).flags.writeable
        with pytest.raises(ValueError):
            cols.col("nodes")[0] = 99

    def test_fallback_identity_selector_never_copies(self):
        jobs = [make_job(i, nodes=i) for i in range(1, 6)]
        cols = queue_columns_from_jobs(jobs)
        # Identity selector: the gathered column IS the master array.
        for name in COLUMN_NAMES:
            assert cols.col(name) is getattr(cols.masters, name)
        assert list(cols.sel) == list(range(5))

    def test_selector_gather_is_cached(self):
        masters = JobColumns([make_job(i, nodes=i) for i in range(1, 7)])
        cols = QueueColumns(masters, [4, 1, 3], 3)
        gathered = cols.col("nodes")
        assert gathered.tolist() == [5, 2, 4]
        assert cols.col("nodes") is gathered  # one gather per rebuild
        assert not gathered.flags.writeable

    def test_lazy_masters_built_once(self):
        calls = []

        def build():
            calls.append(1)
            return JobColumns([make_job(1), make_job(2)])

        cols = QueueColumns(build, None, 2)
        assert cols.masters is cols.masters
        assert len(calls) == 1

    def test_scalar_probe_matches_columns(self):
        masters = JobColumns([make_job(i, nodes=i) for i in range(1, 7)])
        sel = [5, 0, 2]
        for cols in (
            QueueColumns(masters, sel, 3),
            queue_columns_from_jobs(
                [make_job(i, nodes=i) for i in (6, 1, 3)]
            ),
        ):
            # Before any gather: direct master read.
            assert cols.scalar("nodes", 1) == 1
            col = cols.col("nodes")
            # After: served from the cached gather.
            assert [cols.scalar("nodes", p) for p in range(3)] \
                == col.tolist() == [6, 1, 3]

    def test_handbuilt_view_columns_cached(self):
        view = SystemView(
            now=0.0,
            queued=(make_job(1, nodes=2), make_job(2, nodes=4)),
            running=(),
            completed_ids=(),
            free_nodes=8,
            free_memory_gb=64.0,
            total_nodes=8,
            total_memory_gb=64.0,
            pending_arrivals=0,
            next_arrival_time=None,
            next_completion_time=None,
        )
        cols = view.columns()
        assert view.columns() is cols
        assert cols.fits_mask().tolist() == [True, True]
        assert cols.fits_mask() is cols.fits_mask()  # cached mask
        assert cols.fits_at(0) and cols.id_at(1) == 2


def domain_view(*, domain_free, drains=(), remaining=None,
                racks_per_switch=2):
    topo = ClusterTopology(
        n_nodes=64, rack_size=16, racks_per_switch=racks_per_switch
    )
    return SystemView(
        now=0.0,
        queued=(),
        running=(),
        completed_ids=(),
        free_nodes=sum(domain_free),
        free_memory_gb=512.0,
        total_nodes=64,
        total_memory_gb=512.0,
        pending_arrivals=0,
        next_arrival_time=None,
        next_completion_time=None,
        upcoming_drains=tuple(drains),
        remaining_runtimes=remaining or {},
        topology=topo,
        domain_free_nodes=tuple(domain_free),
    )


class TestHealthyDomainMask:
    #: Every placement level: sub-rack, exactly rack, switch-group,
    #: exactly group, and group-spanning (vacuously healthy).
    NODE_COUNTS = [1, 2, 4, 8, 15, 16, 17, 24, 31, 32, 33, 48, 64]

    @pytest.mark.parametrize(
        "domain_free,drains",
        [
            pytest.param((16, 16, 16, 16), (), id="all-free"),
            pytest.param((0, 2, 16, 4), (), id="uneven"),
            pytest.param((0, 0, 0, 0), (), id="exhausted"),
            pytest.param(
                (0, 2, 16, 4),
                (
                    DrainWindow(
                        start=500.0,
                        end=1_000.0,
                        nodes=16,
                        announce_time=0.0,
                        domain="rack2",
                    ),
                ),
                id="drain-pressure",
            ),
        ],
    )
    def test_matches_scalar_predicate(self, domain_free, drains):
        view = domain_view(domain_free=domain_free, drains=drains)
        pressures = domain_pressures(view)
        nodes = np.array(self.NODE_COUNTS, dtype=np.int64)
        mask = healthy_domain_mask(view, nodes, pressures)
        scalar = [
            fits_healthy_domain(view, make_job(i + 1, nodes=int(n)),
                                pressures)
            for i, n in enumerate(self.NODE_COUNTS)
        ]
        assert mask.tolist() == scalar

    def test_all_true_without_domains(self):
        view = SystemView(
            now=0.0, queued=(), running=(), completed_ids=(),
            free_nodes=4, free_memory_gb=32.0, total_nodes=64,
            total_memory_gb=512.0, pending_arrivals=0,
            next_arrival_time=None, next_completion_time=None,
        )
        nodes = np.array([1, 64], dtype=np.int64)
        assert healthy_domain_mask(view, nodes).all()


class TestQueueChurnCrossover:
    def test_starts_at_legacy_base(self):
        assert QueueChurnCrossover().threshold == 64.0

    def test_all_live_scans_keep_base(self):
        xo = QueueChurnCrossover()
        for _ in range(20):
            xo.observe(100, 100)
        assert xo.threshold == pytest.approx(64.0)

    def test_bursty_churn_lowers_crossover(self):
        """The satellite's crossover scenario: kills/requeues leave a
        stale-heavy order array, and scans that a fixed 64 would have
        taken through the scalar loop flip to the vectorized path."""
        xo = QueueChurnCrossover()
        for _ in range(12):
            xo.observe(100, 10)  # 90% stale — a post-shock rebuild
        # A 50-entry scan is below the legacy constant but above the
        # churn-tuned threshold: the old code scalar-loops it, the
        # adaptive one vectorizes.
        assert xo.threshold < 50 < QueueChurnCrossover.BASE
        assert xo.threshold >= QueueChurnCrossover.FLOOR

    def test_recovers_when_churn_subsides(self):
        xo = QueueChurnCrossover()
        for _ in range(12):
            xo.observe(100, 10)
        low = xo.threshold
        for _ in range(12):
            xo.observe(100, 100)
        assert xo.threshold > low
        assert xo.threshold > 60.0  # back within reach of BASE

    def test_empty_scan_is_a_no_op(self):
        xo = QueueChurnCrossover()
        xo.observe(0, 0)
        assert xo.threshold == 64.0

    def test_churn_is_invisible_to_observables(self, monkeypatch):
        """Scalar vs vector path choice never changes behaviour: a
        high-churn disrupted run digests identically whether every
        rebuild is forced scalar or forced vectorized."""
        jobs = generate_workload("checkpoint_stress", 80, seed=3)
        trace = SPEC.build(
            n_nodes=256, horizon=estimate_horizon(jobs, 256), topology=None
        )

        def run():
            return simulate(
                list(jobs),
                create_scheduler("fcfs"),
                disruptions=trace,
                restart_policy="checkpoint",
                checkpoint_interval=900.0,
            )

        baseline = run()
        for forced_threshold in (10 ** 9, 0):  # always-scalar / always-vector
            monkeypatch.setattr(
                QueueChurnCrossover, "BASE", forced_threshold
            )
            monkeypatch.setattr(
                QueueChurnCrossover, "FLOOR", forced_threshold
            )
            assert_identical(baseline, run())


class TestSupersedePersistence:
    def _manifest(self, path):
        return json.loads((path / "MANIFEST.json").read_text("utf-8"))

    def test_counter_survives_reopen(self, tmp_path):
        path = tmp_path / "runs.store"
        store = ShardedStore(path, n_shards=2, auto_compact_threshold=3)
        run = make_stored()
        store.append(run)
        store.append(run)  # supersede #1
        store.append(run)  # supersede #2
        manifest = self._manifest(path)
        assert sum(manifest["superseded"].values()) == 2

        # A fresh sweep process reopens the store: the count resumes
        # at 2, so the very next supersede crosses threshold 3 and
        # compacts — instead of silently restarting from zero.
        reopened = ShardedStore(path, auto_compact_threshold=3)
        assert sum(reopened._superseded.values()) == 2
        reopened.append(run)  # supersede #3 → auto-compaction
        shard = reopened.shard_for(run.key)
        lines = [
            line
            for line in shard.path.read_text("utf-8").splitlines()
            if line.strip()
        ]
        assert len(lines) == 1  # compacted down to the winner
        assert "superseded" not in self._manifest(path)

    def test_explicit_compact_persists_reset(self, tmp_path):
        store = ShardedStore(
            tmp_path / "runs.store", n_shards=2, auto_compact_threshold=100
        )
        run = make_stored()
        store.append(run)
        store.append(run)
        assert "superseded" in self._manifest(tmp_path / "runs.store")
        assert store.compact() == 1
        assert "superseded" not in self._manifest(tmp_path / "runs.store")

    def test_doctor_dedupe_resets_counters(self, tmp_path):
        path = tmp_path / "runs.store"
        store = ShardedStore(path, n_shards=2, auto_compact_threshold=100)
        run = make_stored()
        store.append(run)
        store.append(run)
        report = store.doctor(dedupe=True)
        assert report.n_deduped == 1
        assert "superseded" not in self._manifest(path)
        assert store._superseded == {}

    def test_mangled_counters_read_as_empty(self, tmp_path):
        path = tmp_path / "runs.store"
        ShardedStore(path, n_shards=2).ensure_initialized()
        manifest_path = path / "MANIFEST.json"
        payload = json.loads(manifest_path.read_text("utf-8"))
        payload["superseded"] = {
            "not-an-int": 3, "0": "three", "1": -2, "2": 0
        }
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        # Tolerant parse: counter loss only delays compaction.
        assert ShardedStore(path)._superseded == {}
        payload["superseded"] = ["nonsense"]
        manifest_path.write_text(json.dumps(payload), encoding="utf-8")
        assert ShardedStore(path)._superseded == {}

    def test_sibling_shard_counts_survive_rewrites(self, tmp_path):
        """Two writer handles on different shards: each manifest write
        merges the persisted counts first, so neither zeroes the
        other's progress."""
        path = tmp_path / "runs.store"
        a = ShardedStore(path, n_shards=4, auto_compact_threshold=100)
        b = ShardedStore(path, n_shards=4, auto_compact_threshold=100)
        run_a = make_stored(n_jobs=10)
        run_b = next(
            r
            for r in (make_stored(n_jobs=10 + i) for i in range(1, 64))
            if shard_index(r.key, 4) != shard_index(run_a.key, 4)
        )
        a.append(run_a)
        b.append(run_b)
        a.append(run_a)  # writer A records its supersede
        b.append(run_b)  # writer B must not wipe A's count
        manifest = json.loads((path / "MANIFEST.json").read_text("utf-8"))
        assert sorted(manifest["superseded"].values()) == [1, 1]
