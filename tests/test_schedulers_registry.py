"""Unit tests for the scheduler registry."""

import pytest

import repro  # noqa: F401 - triggers LLM scheduler registration
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
)


class TestRegistry:
    @pytest.mark.parametrize(
        "name",
        [
            "fcfs",
            "fcfs_backfill",
            "sjf",
            "sjf_firstfit",
            "ortools_like",
            "genetic",
            "first_fit",
            "largest_first",
            "random",
            "claude-3.7-sim",
            "o4-mini-sim",
            "onprem-fast-sim",
        ],
    )
    def test_create_each(self, name):
        sched = create_scheduler(name, seed=0)
        assert sched.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            create_scheduler("quantum_annealer")

    def test_available_sorted(self):
        names = available_schedulers()
        assert names == sorted(names)
        assert "fcfs" in names
        assert "claude-3.7-sim" in names

    def test_register_custom(self):
        from repro.schedulers.fcfs import FCFSScheduler

        class Custom(FCFSScheduler):
            name = "custom_test"

        register_scheduler("custom_test", lambda seed=0, **kw: Custom())
        try:
            assert create_scheduler("custom_test").name == "custom_test"
        finally:
            from repro.schedulers.registry import SCHEDULER_FACTORIES

            SCHEDULER_FACTORIES.pop("custom_test")

    def test_llm_kwargs_forwarded(self):
        agent = create_scheduler(
            "claude-3.7-sim", seed=1, hallucination_rate=0.0
        )
        assert agent.backend.profile.hallucination_rate == 0.0


class TestAnnealWindowOption:
    def test_factory_builds_windowed_config(self):
        from repro.schedulers.registry import create_scheduler

        sched = create_scheduler("ortools_like", seed=0, anneal_window=8)
        assert sched.config.window == 8

    def test_window_overlays_explicit_config(self):
        from repro.schedulers.optimizer import AnnealingConfig
        from repro.schedulers.registry import create_scheduler

        sched = create_scheduler(
            "ortools_like",
            seed=0,
            anneal_window=16,
            config=AnnealingConfig(late_pivot_p=0.5),
        )
        assert sched.config.window == 16
        assert sched.config.late_pivot_p == 0.5

    def test_supports_anneal_window(self):
        from repro.schedulers.registry import supports_anneal_window

        assert supports_anneal_window("ortools_like")
        assert not supports_anneal_window("fcfs")
        assert not supports_anneal_window("genetic")
