"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.workloads.arrivals import AllAtZero, BurstyArrivals, PoissonArrivals


class TestAllAtZero:
    def test_all_zero(self):
        times = AllAtZero().times(np.random.default_rng(0), 10)
        assert (times == 0.0).all()

    def test_empty(self):
        assert AllAtZero().times(np.random.default_rng(0), 0).size == 0


class TestPoisson:
    def test_first_arrival_at_zero(self, rng):
        times = PoissonArrivals(rate=0.1).times(rng, 50)
        assert times[0] == 0.0

    def test_sorted_non_negative(self, rng):
        times = PoissonArrivals(rate=0.1).times(rng, 100)
        assert (np.diff(times) >= 0).all()
        assert (times >= 0).all()

    def test_mean_gap_matches_rate(self):
        rng = np.random.default_rng(7)
        times = PoissonArrivals(rate=0.5).times(rng, 5000)
        mean_gap = np.diff(times).mean()
        assert mean_gap == pytest.approx(2.0, rel=0.1)

    def test_deterministic_under_seed(self):
        a = PoissonArrivals(rate=0.2).times(np.random.default_rng(3), 20)
        b = PoissonArrivals(rate=0.2).times(np.random.default_rng(3), 20)
        np.testing.assert_array_equal(a, b)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-1.0)

    def test_empty(self, rng):
        assert PoissonArrivals(rate=1.0).times(rng, 0).size == 0


class TestBursty:
    def test_sorted_non_negative(self, rng):
        times = BurstyArrivals().times(rng, 60)
        assert (np.diff(times) >= 0).all()
        assert times[0] == 0.0

    def test_idle_gaps_between_bursts(self):
        rng = np.random.default_rng(11)
        proc = BurstyArrivals(burst_size=5, burst_rate=1.0, idle_gap=10_000.0)
        times = proc.times(rng, 30)
        gaps = np.diff(times)
        # Gaps at burst boundaries (index 4, 9, ... in diff space) dwarf
        # within-burst gaps on average.
        boundary = gaps[4::5]
        within = np.delete(gaps, slice(4, None, 5))
        assert boundary.mean() > 50 * within.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(burst_size=0)
        with pytest.raises(ValueError):
            BurstyArrivals(burst_rate=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(idle_gap=-1.0)

    def test_empty(self, rng):
        assert BurstyArrivals().times(rng, 0).size == 0
