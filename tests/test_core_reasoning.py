"""Unit tests for the simulated reasoning policy."""

import numpy as np

from repro.core.profiles import CLAUDE_37_SIM
from repro.core.prompt import PromptBuilder
from repro.core.reasoning import ReasoningPolicy
from repro.core.scratchpad import Scratchpad
from repro.sim.actions import ActionKind
from repro.sim.simulator import RunningJob, SystemView

from tests.conftest import make_job


def make_view(queued=(), running=(), *, now=0.0, free_nodes=8, free_mem=64.0,
              pending=0, next_completion=None):
    return SystemView(
        now=now,
        queued=tuple(queued),
        running=tuple(running),
        completed_ids=(),
        free_nodes=free_nodes,
        free_memory_gb=free_mem,
        total_nodes=8,
        total_memory_gb=64.0,
        pending_arrivals=pending,
        next_arrival_time=None,
        next_completion_time=next_completion,
    )


def make_ctx(view, scratchpad=None):
    return PromptBuilder().build(view, scratchpad or Scratchpad())


def policy(profile=None, seed=0):
    return ReasoningPolicy(profile or CLAUDE_37_SIM, np.random.default_rng(seed))


class TestDecisions:
    def test_stop_when_all_scheduled(self):
        step = policy().decide(make_ctx(make_view()))
        assert step.action.kind is ActionKind.STOP
        assert "stop the scheduling process" in step.thought

    def test_delay_when_nothing_fits(self):
        view = make_view(
            queued=[make_job(1, nodes=8)],
            running=[RunningJob(make_job(2, nodes=8, duration=100.0), 0.0)],
            free_nodes=0,
            next_completion=100.0,
        )
        step = policy().decide(make_ctx(view))
        assert step.action.kind is ActionKind.DELAY
        assert "t=100" in step.thought

    def test_starts_head_job(self):
        view = make_view(queued=[make_job(1, nodes=4)])
        step = policy().decide(make_ctx(view))
        assert step.action.kind is ActionKind.START
        assert step.action.job_id == 1

    def test_backfill_verb_for_out_of_order_pick(self):
        # Head job blocked; a later small job is feasible → BackfillJob.
        head = make_job(1, nodes=8, duration=100.0)
        small = make_job(2, nodes=2, duration=10.0)
        view = make_view(
            queued=[head, small],
            running=[RunningJob(make_job(3, nodes=4, duration=50.0), 0.0)],
            free_nodes=4,
            next_completion=50.0,
        )
        step = policy().decide(make_ctx(view))
        assert step.action.kind is ActionKind.BACKFILL
        assert step.action.job_id == 2

    def test_thought_mentions_candidates(self):
        jobs = [make_job(i, nodes=2, duration=10.0 * i) for i in range(1, 4)]
        step = policy().decide(make_ctx(make_view(queued=jobs)))
        assert "Job 1" in step.thought
        assert "Balancing fairness" in step.thought


class TestScoring:
    def test_fairness_dominant_picks_longest_waiter(self):
        profile = CLAUDE_37_SIM.with_weights(
            fairness=1.0, makespan=0.0, utilization=0.0, throughput=0.0,
            easy_win_bias=0.0, starvation_patience=1e9,
        )
        old = make_job(1, submit=0.0, nodes=2)
        fresh = make_job(2, submit=990.0, nodes=2)
        view = make_view(queued=[fresh, old], now=1000.0)
        scores = policy(profile).score_jobs(make_ctx(view), [fresh, old])
        assert scores[0].job.job_id == 1

    def test_throughput_dominant_picks_shortest(self):
        profile = CLAUDE_37_SIM.with_weights(
            fairness=0.0, makespan=0.0, utilization=0.0, throughput=1.0,
            easy_win_bias=0.0, starvation_patience=1e9,
        )
        short = make_job(1, duration=5.0, nodes=2)
        long = make_job(2, duration=500.0, nodes=2)
        scores = policy(profile).score_jobs(
            make_ctx(make_view(queued=[long, short])), [long, short]
        )
        assert scores[0].job.job_id == 1

    def test_utilization_dominant_picks_biggest(self):
        profile = CLAUDE_37_SIM.with_weights(
            fairness=0.0, makespan=0.0, utilization=1.0, throughput=0.0,
            easy_win_bias=0.0, starvation_patience=1e9,
        )
        small = make_job(1, nodes=1, memory=1.0, duration=10.0)
        big = make_job(2, nodes=8, memory=64.0, duration=10.0)
        scores = policy(profile).score_jobs(
            make_ctx(make_view(queued=[small, big])), [small, big]
        )
        assert scores[0].job.job_id == 2

    def test_scores_sorted_descending(self):
        jobs = [make_job(i, nodes=i, duration=i * 10.0) for i in range(1, 6)]
        scores = policy().score_jobs(make_ctx(make_view(queued=jobs)), jobs)
        totals = [s.total for s in scores]
        assert totals == sorted(totals, reverse=True)

    def test_dominant_objective_labels(self):
        jobs = [make_job(1, nodes=8, memory=64.0, duration=10.0)]
        scores = policy().score_jobs(make_ctx(make_view(queued=jobs)), jobs)
        assert scores[0].dominant_objective() in {
            "fairness", "makespan", "utilization", "throughput",
        }


class TestHallucinationAndRecovery:
    def test_hallucination_proposes_infeasible(self):
        profile = CLAUDE_37_SIM.with_hallucination_rate(1.0)
        blocked = make_job(1, nodes=8)
        small = make_job(2, nodes=1)
        view = make_view(
            queued=[blocked, small],
            running=[RunningJob(make_job(3, nodes=6, duration=50.0), 0.0)],
            free_nodes=2,
            next_completion=50.0,
        )
        step = policy(profile).decide(make_ctx(view))
        assert step.hallucinated
        assert step.action.job_id == 1  # the infeasible one

    def test_rejected_job_avoided_after_feedback(self):
        profile = CLAUDE_37_SIM.with_hallucination_rate(1.0)
        blocked = make_job(1, nodes=8)
        small = make_job(2, nodes=1)
        pad = Scratchpad()
        pad.append(
            0.0, "tried it", "StartJob(job_id=1)",
            feedback="Job 1 cannot be started — requires 8 Nodes...",
        )
        view = make_view(
            queued=[blocked, small],
            running=[RunningJob(make_job(3, nodes=6, duration=50.0), 0.0)],
            free_nodes=2,
            next_completion=50.0,
        )
        step = policy(profile).decide(make_ctx(view, pad))
        # Job 1 was rejected at this timestep: not proposed again.
        assert step.action.job_id != 1

    def test_zero_rate_never_hallucinates(self):
        profile = CLAUDE_37_SIM.with_hallucination_rate(0.0)
        blocked = make_job(1, nodes=8)
        small = make_job(2, nodes=1)
        view = make_view(
            queued=[blocked, small],
            running=[RunningJob(make_job(3, nodes=6, duration=50.0), 0.0)],
            free_nodes=2,
            next_completion=50.0,
        )
        for seed in range(20):
            step = policy(profile, seed=seed).decide(make_ctx(view))
            assert not step.hallucinated


class TestStarvationProtection:
    def test_starving_feasible_job_preferred(self):
        profile = CLAUDE_37_SIM.with_weights(starvation_patience=0.1)
        starving = make_job(1, submit=0.0, nodes=4, duration=100.0)
        shiny = make_job(2, submit=4999.0, nodes=2, duration=5.0)
        view = make_view(queued=[starving, shiny], now=5000.0)
        step = policy(profile).decide(make_ctx(view))
        assert step.action.job_id == 1
        assert "Fairness check" in step.thought

    def test_holds_resources_for_starving_infeasible_job(self):
        profile = CLAUDE_37_SIM.with_weights(starvation_patience=0.1)
        starving = make_job(1, submit=0.0, nodes=8, duration=100.0)
        # This long job fits now but would delay the starving job.
        tempting = make_job(2, submit=4999.0, nodes=4, duration=10_000.0)
        view = make_view(
            queued=[starving, tempting],
            running=[RunningJob(make_job(3, nodes=4, duration=5050.0), 0.0)],
            free_nodes=4,
            now=5000.0,
            next_completion=5050.0,
        )
        step = policy(profile).decide(make_ctx(view))
        assert step.action.kind is ActionKind.DELAY
        assert "hold" in step.thought

    def test_safe_backfill_allowed_during_protection(self):
        profile = CLAUDE_37_SIM.with_weights(starvation_patience=0.1)
        starving = make_job(1, submit=0.0, nodes=8, duration=100.0)
        quick = make_job(2, submit=4999.0, nodes=4, duration=10.0)
        view = make_view(
            queued=[starving, quick],
            running=[RunningJob(make_job(3, nodes=4, duration=5050.0), 0.0)],
            free_nodes=4,
            now=5000.0,
            next_completion=5050.0,
        )
        step = policy(profile).decide(make_ctx(view))
        # Quick job ends before the starving job's shadow time (5050).
        assert step.action.job_id == 2
