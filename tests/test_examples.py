"""Smoke tests: every example script must run end-to-end.

Examples are the library's public face; a release where they crash is
broken regardless of unit-test status. Each runs in-process via runpy
with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert ALL_EXAMPLES, f"no examples found in {EXAMPLES_DIR}"
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_mentions_all_schedulers(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for name in ("fcfs", "sjf", "ortools_like", "claude-3.7-sim"):
        assert name in out
    assert "Thought" in out


def test_interpretability_traces_show_feedback(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "interpretability_traces.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "# Thought" in out
    assert "# Action" in out
