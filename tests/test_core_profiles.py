"""Unit tests for model profiles and latency models."""

import numpy as np
import pytest

from repro.core.profiles import (
    CLAUDE_37_SIM,
    MODEL_PROFILES,
    O4_MINI_SIM,
    LatencyModel,
    PolicyWeights,
    get_profile,
)


class TestPolicyWeights:
    def test_defaults_valid(self):
        PolicyWeights()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="fairness"):
            PolicyWeights(fairness=-0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PolicyWeights().fairness = 1.0  # type: ignore[misc]


class TestLatencyModel:
    def test_positive_samples(self, rng):
        model = LatencyModel(base_s=5.0)
        for _ in range(100):
            assert model.sample(rng) > 0.0

    def test_deterministic_under_seed(self):
        model = O4_MINI_SIM.latency
        a = [
            model.sample(np.random.default_rng(1), queue_len=10, heterogeneity=0.5)
            for _ in range(5)
        ]
        b = [
            model.sample(np.random.default_rng(1), queue_len=10, heterogeneity=0.5)
            for _ in range(5)
        ]
        assert a == b

    def test_heterogeneity_raises_latency(self):
        model = LatencyModel(base_s=10.0, sigma=0.1, het_sensitivity=2.0)
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        low = np.mean([model.sample(rng_a, heterogeneity=0.0) for _ in range(200)])
        high = np.mean([model.sample(rng_b, heterogeneity=1.0) for _ in range(200)])
        assert high > 2.0 * low

    def test_queue_length_raises_latency(self):
        model = LatencyModel(base_s=10.0, sigma=0.1, queue_sensitivity=1.0)
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        short = np.mean([model.sample(rng_a, queue_len=0) for _ in range(200)])
        long = np.mean([model.sample(rng_b, queue_len=40) for _ in range(200)])
        assert long > 2.0 * short

    def test_outliers_appear(self):
        model = LatencyModel(
            base_s=10.0, sigma=0.1, outlier_prob=0.5, outlier_scale=20.0
        )
        rng = np.random.default_rng(0)
        samples = [model.sample(rng) for _ in range(200)]
        assert max(samples) > 100.0


class TestProfiles:
    def test_registry_contains_all_models(self):
        assert set(MODEL_PROFILES) == {
            "claude-3.7-sim",
            "o4-mini-sim",
            "onprem-fast-sim",
        }

    def test_onprem_profile_is_fast_claude(self):
        from repro.core.profiles import ONPREM_FAST_SIM

        assert ONPREM_FAST_SIM.weights == CLAUDE_37_SIM.weights
        rng = np.random.default_rng(0)
        samples = [
            ONPREM_FAST_SIM.latency.sample(rng, queue_len=20, heterogeneity=1.0)
            for _ in range(200)
        ]
        assert np.percentile(samples, 90) < 0.5  # sub-second reasoning

    def test_get_profile(self):
        assert get_profile("claude-3.7-sim") is CLAUDE_37_SIM
        with pytest.raises(KeyError, match="unknown model profile"):
            get_profile("gpt-2")

    def test_claude_latency_tight(self):
        """Claude-sim per-call latencies cluster below ~10s (paper Fig. 5)."""
        rng = np.random.default_rng(0)
        samples = [
            CLAUDE_37_SIM.latency.sample(rng, queue_len=10, heterogeneity=1.0)
            for _ in range(500)
        ]
        assert np.percentile(samples, 90) < 12.0

    def test_o4_latency_heavy_tailed(self):
        """O4-Mini-sim shows >100s outliers on heterogeneous queues."""
        rng = np.random.default_rng(0)
        samples = [
            O4_MINI_SIM.latency.sample(rng, queue_len=20, heterogeneity=1.0)
            for _ in range(500)
        ]
        assert max(samples) > 100.0
        assert np.mean(samples) > 5 * np.mean(
            [
                CLAUDE_37_SIM.latency.sample(
                    np.random.default_rng(1), queue_len=20, heterogeneity=1.0
                )
                for _ in range(500)
            ]
        )

    def test_with_weights_derives_new_profile(self):
        derived = CLAUDE_37_SIM.with_weights(fairness=0.9)
        assert derived.weights.fairness == 0.9
        assert CLAUDE_37_SIM.weights.fairness != 0.9
        assert derived.name == CLAUDE_37_SIM.name

    def test_with_hallucination_rate(self):
        derived = O4_MINI_SIM.with_hallucination_rate(0.0)
        assert derived.hallucination_rate == 0.0
        assert O4_MINI_SIM.hallucination_rate > 0.0

    def test_paper_metadata(self):
        assert CLAUDE_37_SIM.max_tokens == 5000
        assert CLAUDE_37_SIM.temperature == 0.0
        assert O4_MINI_SIM.max_tokens == 100_000
