"""Equivalence guarantees of the incremental packing kernel.

The performance rewrite (flat preallocated profile arrays, prefix-pack
caching, zero-copy decision snapshots) is only valid if it is
*invisible* to results: the annealer's seeded trajectory acceptance
decisions compare floats, so placements and objectives must be
**bit-identical**, not merely close. These tests pin that contract
against the retained naive reference implementation
(:mod:`repro.schedulers.packing_reference`) at three levels:

1. single packs and incremental suffix re-packs vs the reference, on
   randomized workloads;
2. profile snapshot/rollback round-trips;
3. whole simulations: byte-identical :class:`ScheduleResult`s for the
   annealing optimizer (incremental vs naive packer) and for both the
   optimizer and EASY backfill under old-style (fully materialized)
   system views vs the zero-copy views.
"""

import numpy as np
import pytest

from repro.schedulers.fcfs import EasyBackfillScheduler
from repro.schedulers.optimizer import AnnealingOptimizer
from repro.schedulers.packing import (
    IncrementalPacker,
    ResourceProfile,
    pack_order,
)
from repro.schedulers.packing_reference import (
    ReferenceResourceProfile,
    reference_pack_order,
)
from repro.sim.simulator import HPCSimulator, SystemView
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


def random_jobs(rng: np.random.Generator, n: int) -> list:
    return [
        make_job(
            i + 1,
            submit=float(rng.choice([0.0, rng.uniform(0.0, 100.0)])),
            duration=float(rng.uniform(1.0, 200.0)),
            nodes=int(rng.integers(1, 9)),
            memory=float(rng.integers(1, 65)),
        )
        for i in range(n)
    ]


def random_releases(rng: np.random.Generator) -> list:
    return [
        (
            float(rng.uniform(-10.0, 150.0)),
            float(rng.integers(0, 4)),
            float(rng.integers(0, 16)),
        )
        for _ in range(int(rng.integers(0, 6)))
    ]


def assert_same_placements(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.job.job_id == e.job.job_id
        assert g.start == e.start  # bitwise float equality, not approx


class TestPackOrderEquivalence:
    def test_randomized_full_packs(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            jobs = random_jobs(rng, int(rng.integers(1, 50)))
            releases = random_releases(rng)
            kwargs = dict(
                now=5.0, free_nodes=8, free_memory_gb=64.0, releases=releases
            )
            assert_same_placements(
                pack_order(jobs, **kwargs),
                reference_pack_order(jobs, **kwargs),
            )

    def test_profile_arrays_match_reference_after_reserves(self):
        rng = np.random.default_rng(3)
        fast = ResourceProfile(0.0, 8, 64.0, releases=[(40.0, 2, 16.0)])
        ref = ReferenceResourceProfile(
            0.0, 8, 64.0, releases=[(40.0, 2, 16.0)]
        )
        for _ in range(40):
            nodes = int(rng.integers(1, 5))
            mem = float(rng.integers(1, 17))
            dur = float(rng.uniform(1.0, 60.0))
            nb = float(rng.uniform(0.0, 120.0))
            s_fast = fast.earliest_start(nodes, mem, dur, not_before=nb)
            s_ref = ref.earliest_start(nodes, mem, dur, not_before=nb)
            assert s_fast == s_ref
            fast.reserve(s_fast, dur, nodes, mem)
            ref.reserve(s_ref, dur, nodes, mem)
            np.testing.assert_array_equal(fast.times, ref.times)
            np.testing.assert_array_equal(fast.free_nodes, ref.free_nodes)
            np.testing.assert_array_equal(fast.free_memory, ref.free_memory)


class TestIncrementalKernel:
    def test_suffix_repack_matches_scratch_pack(self):
        rng = np.random.default_rng(23)
        for _ in range(12):
            n = int(rng.integers(2, 45))
            jobs = random_jobs(rng, n)
            releases = random_releases(rng)
            kwargs = dict(
                now=0.0, free_nodes=8, free_memory_gb=64.0, releases=releases
            )
            packer = IncrementalPacker(**kwargs)
            current = list(jobs)
            packer.pack(current)
            for _ in range(20):
                i, j = rng.integers(0, n, size=2)
                if i == j:
                    continue
                cand = list(current)
                cand[i], cand[j] = cand[j], cand[i]
                pivot = int(min(i, j))
                got = packer.pack_from(cand, pivot)
                assert_same_placements(
                    got, reference_pack_order(cand, **kwargs)
                )
                if rng.random() < 0.5:  # adopt some candidates
                    packer.commit(cand, pivot, got)
                    current = cand

    @pytest.mark.parametrize("stride", [1, 3, 1 << 30])
    def test_checkpoint_stride_does_not_change_results(self, stride):
        rng = np.random.default_rng(5)
        jobs = random_jobs(rng, 20)
        kwargs = dict(now=0.0, free_nodes=8, free_memory_gb=64.0)
        packer = IncrementalPacker(checkpoint_stride=stride, **kwargs)
        packer.pack(jobs)
        cand = list(jobs)
        cand[2], cand[15] = cand[15], cand[2]
        assert_same_placements(
            packer.pack_from(cand, 2), reference_pack_order(cand, **kwargs)
        )

    def test_pack_from_pivot_zero_equals_full_pack(self):
        rng = np.random.default_rng(9)
        jobs = random_jobs(rng, 15)
        kwargs = dict(now=0.0, free_nodes=8, free_memory_gb=64.0)
        packer = IncrementalPacker(**kwargs)
        packer.pack(jobs)
        reordered = list(reversed(jobs))
        assert_same_placements(
            packer.pack_from(reordered, 0),
            reference_pack_order(reordered, **kwargs),
        )

    def test_pack_from_before_any_pack_is_a_full_pack(self):
        rng = np.random.default_rng(13)
        jobs = random_jobs(rng, 10)
        kwargs = dict(now=0.0, free_nodes=8, free_memory_gb=64.0)
        packer = IncrementalPacker(**kwargs)
        # No incumbent yet: any pivot degrades to a pivot-0 full pack.
        assert_same_placements(
            packer.pack_from(jobs, 4), reference_pack_order(jobs, **kwargs)
        )


class TestSnapshotRollback:
    def test_snapshot_restore_roundtrip(self):
        profile = ResourceProfile(0.0, 8, 64.0, releases=[(30.0, 4, 32.0)])
        profile.reserve(0.0, 10.0, 2, 8.0)
        snap = profile.snapshot()
        times = profile.times.copy()
        fn = profile.free_nodes.copy()
        fm = profile.free_memory.copy()
        # Mutate heavily, then roll back.
        for s in range(5):
            profile.reserve(5.0 * s, 7.0, 1, 4.0)
        profile.restore(snap)
        np.testing.assert_array_equal(profile.times, times)
        np.testing.assert_array_equal(profile.free_nodes, fn)
        np.testing.assert_array_equal(profile.free_memory, fm)

    def test_snapshot_is_isolated_from_later_mutation(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        snap = profile.snapshot()
        profile.reserve(0.0, 50.0, 8, 64.0)
        assert snap.size == 1
        assert snap.free_nodes[0] == 8.0

    def test_restore_after_growth(self):
        profile = ResourceProfile(0.0, 64, 512.0)
        snap = profile.snapshot()
        # Force several regrows past the initial capacity.
        for s in range(80):
            profile.reserve(float(2 * s), 1.0, 1, 1.0)
        profile.restore(snap)
        assert profile.times.size == 1
        assert profile.earliest_start(64, 512.0, 1.0, not_before=0.0) == 0.0


def result_fingerprint(result) -> tuple:
    """Canonical byte-comparable encoding of a ScheduleResult."""
    records = tuple(
        (r.job.job_id, repr(r.start_time), repr(r.end_time), r.killed)
        for r in result.records
    )
    decisions = tuple(
        (
            repr(d.time),
            d.action.kind.value,
            getattr(d.action, "job_id", None),
            d.accepted,
            d.retry_index,
        )
        for d in result.decisions
    )
    return records, decisions


class MaterializingView:
    """Scheduler wrapper feeding old-style, fully materialized views.

    Rebuilds every snapshot the way the pre-rewrite simulator did —
    ``completed_ids`` as a fresh tuple, no shared structures — so a
    byte-identical result proves the zero-copy views are semantically
    invisible to the wrapped policy.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name

    @staticmethod
    def _materialize(view: SystemView) -> SystemView:
        return SystemView(
            now=view.now,
            queued=tuple(view.queued),
            running=tuple(view.running),
            completed_ids=tuple(view.completed_ids),
            free_nodes=view.free_nodes,
            free_memory_gb=view.free_memory_gb,
            total_nodes=view.total_nodes,
            total_memory_gb=view.total_memory_gb,
            pending_arrivals=view.pending_arrivals,
            next_arrival_time=view.next_arrival_time,
            next_completion_time=view.next_completion_time,
            blocked_jobs=view.blocked_jobs,
        )

    def reset(self) -> None:
        self._inner.reset()

    def decide(self, view):
        return self._inner.decide(self._materialize(view))

    def on_rejection(self, action, violations, view) -> None:
        self._inner.on_rejection(action, violations, self._materialize(view))

    def decision_meta(self):
        return self._inner.decision_meta()


class TestSerialEquivalence:
    """Acceptance: fixed seeds -> byte-identical ScheduleResults."""

    @pytest.mark.parametrize("scenario,seed", [
        ("heterogeneous_mix", 0),
        ("adversarial", 3),
        ("bursty_idle", 1),
    ])
    def test_annealer_incremental_vs_naive_packer(self, scenario, seed):
        jobs = generate_workload(scenario, 40, seed=seed)
        fast = run_sim(jobs, AnnealingOptimizer(seed=7))
        naive = run_sim(
            jobs, AnnealingOptimizer(seed=7, use_incremental=False)
        )
        assert result_fingerprint(fast) == result_fingerprint(naive)
        # The annealing trajectories must match step for step, not just
        # the final schedule.
        assert [
            (s.queue_size, s.initial_objective, s.final_objective)
            for s in fast.extras["plan_stats"]
        ] == [
            (s.queue_size, s.initial_objective, s.final_objective)
            for s in naive.extras["plan_stats"]
        ]

    def test_annealer_zero_copy_views_vs_materialized(self):
        jobs = generate_workload("heterogeneous_mix", 30, seed=2)
        fast = run_sim(jobs, AnnealingOptimizer(seed=1))
        wrapped = run_sim(
            jobs, MaterializingView(AnnealingOptimizer(seed=1))
        )
        assert result_fingerprint(fast) == result_fingerprint(wrapped)

    def test_easy_backfill_zero_copy_views_vs_materialized(self):
        jobs = generate_workload("long_job_dominant", 50, seed=4)
        fast = run_sim(jobs, EasyBackfillScheduler())
        wrapped = run_sim(jobs, MaterializingView(EasyBackfillScheduler()))
        assert result_fingerprint(fast) == result_fingerprint(wrapped)

    def test_easy_backfill_deterministic_across_runs(self):
        jobs = generate_workload("resource_sparse", 40, seed=6)
        a = run_sim(jobs, EasyBackfillScheduler())
        b = run_sim(jobs, EasyBackfillScheduler())
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_walltime_enforced_simulation_unaffected(self):
        jobs = generate_workload("heterogeneous_mix", 25, seed=8)
        sim_a = HPCSimulator(
            jobs=list(jobs),
            scheduler=AnnealingOptimizer(seed=3),
            enforce_walltime=True,
        )
        sim_b = HPCSimulator(
            jobs=list(jobs),
            scheduler=AnnealingOptimizer(seed=3, use_incremental=False),
            enforce_walltime=True,
        )
        assert result_fingerprint(sim_a.run()) == result_fingerprint(
            sim_b.run()
        )
