"""Unit tests for Jain's fairness index."""

import numpy as np
import pytest

from repro.metrics.fairness import jain_index, per_group_means


class TestJainIndex:
    def test_uniform_is_perfect(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_value_is_perfect(self):
        assert jain_index([3.0]) == pytest.approx(1.0)

    def test_empty_is_perfect(self):
        assert jain_index([]) == 1.0

    def test_all_zero_is_perfect(self):
        assert jain_index([0.0, 0.0, 0.0]) == 1.0

    def test_one_hot_is_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_value(self):
        # J([1, 2, 3]) = 36 / (3 * 14) = 6/7
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(6.0 / 7.0)

    def test_scale_invariant(self):
        values = [1.0, 4.0, 2.0]
        assert jain_index(values) == pytest.approx(
            jain_index([v * 1000 for v in values])
        )

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            values = rng.exponential(10.0, size=rng.integers(1, 30))
            j = jain_index(values)
            assert 1.0 / len(values) - 1e-12 <= j <= 1.0 + 1e-12

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jain_index([-1.0, 2.0])

    def test_accepts_numpy_array(self):
        assert jain_index(np.array([2.0, 2.0])) == pytest.approx(1.0)


class TestPerGroupMeans:
    def test_means_per_label(self):
        values = np.array([10.0, 20.0, 30.0])
        labels = np.array(["a", "b", "a"], dtype=object)
        labs, means = per_group_means(values, labels)
        assert list(labs) == ["a", "b"]
        np.testing.assert_allclose(means, [20.0, 20.0])

    def test_first_seen_order(self):
        values = np.array([1.0, 2.0, 3.0])
        labels = np.array(["z", "a", "z"], dtype=object)
        labs, _ = per_group_means(values, labels)
        assert list(labs) == ["z", "a"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shape"):
            per_group_means(np.array([1.0]), np.array(["a", "b"], dtype=object))

    def test_single_group(self):
        labs, means = per_group_means(
            np.array([4.0, 6.0]), np.array(["u", "u"], dtype=object)
        )
        assert list(labs) == ["u"]
        assert means[0] == pytest.approx(5.0)
