"""Unit tests for the service's protocol, cache, and coalescing edges.

The e2e suite (test_service_server.py) drives the happy paths over a
real socket; these tests pin the corners that are awkward to reach
from a live daemon — malformed frames, the preemption digest lanes,
LRU eviction, and the in-flight coalescing fast path.
"""

import asyncio
from types import SimpleNamespace

import pytest

from repro.experiments.runner import run_single
from repro.experiments.store import StoredRun
from repro.service import protocol
from repro.service.cache import CacheStats, ResultCache
from repro.service.client import wait_for_server
from repro.service.server import ServiceServer
from repro.service.service import SchedulingService
from repro.sim.job import Job


class TestProtocolFraming:
    def test_decode_rejects_malformed_json(self):
        with pytest.raises(ValueError, match="malformed protocol line"):
            protocol.decode(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ValueError, match="not a JSON object"):
            protocol.decode(b"[1, 2]\n")

    def test_encode_decode_round_trip(self):
        message = protocol.request(7, "ping", {"a": 1.5})
        assert protocol.decode(protocol.encode(message)) == message

    def test_job_wire_round_trip_is_lossless(self):
        job = Job(
            job_id=3,
            submit_time=1.25,
            duration=10.5,
            nodes=4,
            memory_gb=32.0,
            walltime=20.0,
            user="user_7",
            group="group_2",
            name="batch-3",
            depends_on=(1, 2),
        )
        assert protocol.job_from_wire(protocol.job_to_wire(job)) == job

    def test_job_from_wire_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="malformed job payload"):
            protocol.job_from_wire({"job_id": 1})

    def test_job_from_wire_rejects_wrong_types(self):
        with pytest.raises(ValueError, match="malformed job payload"):
            protocol.job_from_wire(
                {
                    "job_id": 1,
                    "submit_time": None,
                    "duration": 1.0,
                    "nodes": 1,
                    "memory_gb": 1.0,
                }
            )


class TestDigestParity:
    def test_preemption_lane_crosses_the_wire_intact(self):
        # Preempted-and-restarted plus killed-for-good: both
        # restart_time shapes must hash identically on either side of
        # the JSON boundary.
        preemptions = [
            SimpleNamespace(
                job_id=4,
                time=12.5,
                reason="node_failure",
                work_saved=3.25,
                work_lost=1.75,
                restart_time=20.0,
            ),
            SimpleNamespace(
                job_id=9,
                time=40.0,
                reason="walltime",
                work_saved=0.0,
                work_lost=7.5,
                restart_time=None,
            ),
        ]
        result = SimpleNamespace(
            records=[], decisions=[], preemptions=preemptions
        )
        metrics = {"makespan": 123.0625}
        wire = [protocol.preemption_to_wire(p) for p in preemptions]
        assert protocol.schedule_digest(result, metrics) == (
            protocol.wire_digest([], [], wire, metrics)
        )

    def test_wire_digest_distinguishes_restart_shapes(self):
        base = dict(
            job_id=1,
            time=1.0,
            reason="r",
            work_saved=0.5,
            work_lost=0.5,
            restart_time=None,
        )
        with_restart = dict(base, restart_time=2.0)
        assert protocol.wire_digest([], [], [base], {}) != (
            protocol.wire_digest([], [], [with_restart], {})
        )


@pytest.fixture(scope="module")
def stored_runs():
    return [
        StoredRun.from_run(
            run_single("adversarial", 8, "fcfs", workload_seed=seed)
        )
        for seed in (0, 1, 2)
    ]


class TestResultCache:
    def test_lru_evicts_oldest(self, stored_runs):
        cache = ResultCache(max_entries=2)
        for stored in stored_runs:
            cache.put(stored)
        assert len(cache) == 2
        assert cache.get(stored_runs[0].key) is None
        assert cache.get(stored_runs[2].key) is stored_runs[2]
        # get() refreshes recency: [1] is now the eviction candidate.
        cache.get(stored_runs[2].key)
        cache.put(stored_runs[0])
        assert cache.get(stored_runs[1].key) is None
        assert cache.get(stored_runs[2].key) is stored_runs[2]

    def test_storeless_cache_counts_misses(self, stored_runs):
        cache = ResultCache.for_path(None)
        assert cache.store is None
        assert cache.lookup(stored_runs[0].key) == (None, "miss")
        assert cache.stats.misses == 1

    def test_store_hit_promotes_into_memory(self, tmp_path, stored_runs):
        cache = ResultCache.for_path(tmp_path / "cells.jsonl")
        cache.put(stored_runs[0])
        # A fresh cache over the same file: first lookup is a store
        # hit, the second a memory hit.
        fresh = ResultCache.for_path(tmp_path / "cells.jsonl")
        assert fresh.lookup(stored_runs[0].key)[1] == "store"
        assert fresh.lookup(stored_runs[0].key)[1] == "memory"
        assert fresh.stats.as_dict()["hits_store"] == 1
        assert fresh.stats.as_dict()["hits_memory"] == 1

    def test_stats_dict_is_complete(self):
        assert set(CacheStats().as_dict()) == {
            "hits_memory",
            "hits_store",
            "misses",
            "simulations",
            "coalesced",
            "store_appends",
        }


def run_cell_params(workload_seed=0):
    return {
        "config": {
            "scenario": "adversarial",
            "n_jobs": 8,
            "scheduler": "fcfs",
            "workload_seed": workload_seed,
            "scheduler_seed": 0,
            "arrival_mode": "scenario",
            "disruptions": None,
            "restart_policy": "resubmit",
            "checkpoint_interval": None,
            "topology": None,
            "anneal_window": None,
            "engine": "soa",
        }
    }


class TestServiceUnit:
    def test_concurrent_identical_cells_coalesce(self):
        async def scenario():
            service = SchedulingService(workers=1)
            try:
                first, second = await asyncio.gather(
                    service.handle("run_cell", run_cell_params()),
                    service.handle("run_cell", run_cell_params()),
                )
                return first, second, service.cache.stats
            finally:
                await service.aclose(grace_s=1.0)

        first, second, stats = asyncio.run(scenario())
        # One of them simulated; the other rode along on the same
        # in-flight future without a second pool submission.
        assert {first["source"], second["source"]} == {
            "simulated",
            "coalesced",
        }
        assert first["run"] == second["run"]
        assert stats.simulations == 1
        assert stats.coalesced == 1

    def test_malformed_params_raise_value_errors(self):
        async def scenario():
            service = SchedulingService()
            with pytest.raises(ValueError, match="'config' object"):
                await service.handle("run_cell", {"config": None})
            opened = await service.handle(
                "open_session",
                {"scheduler": "fcfs", "max_decisions": 500},
            )
            sid = opened["session_id"]
            from repro.service.session import SessionError

            with pytest.raises(SessionError, match="'jobs' list"):
                await service.handle(
                    "submit_jobs", {"session_id": sid, "jobs": "nope"}
                )
            assert service._sessions[sid].config.max_decisions == 500
            await service.aclose(grace_s=1.0)

        asyncio.run(scenario())


class TestServerBinding:
    def test_exactly_one_bind_required(self):
        service = SchedulingService()
        with pytest.raises(ValueError, match="exactly one"):
            ServiceServer(service)
        with pytest.raises(ValueError, match="exactly one"):
            ServiceServer(
                service, socket_path="/tmp/x.sock", host="127.0.0.1"
            )

    def test_wait_for_server_times_out(self, tmp_path):
        with pytest.raises(TimeoutError, match="not reachable"):
            wait_for_server(
                socket_path=tmp_path / "nobody-home.sock", timeout=0.2
            )
