"""Tests for the job-dependency extension (paper §6 future work)."""

import pytest

import repro  # noqa: F401
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.heuristics import FirstFitScheduler
from repro.schedulers.registry import create_scheduler
from repro.sim.job import Job, validate_dependencies
from repro.sim.simulator import HPCSimulator
from repro.workloads.dags import (
    chain_workload,
    critical_path_length,
    fork_join_workload,
    layered_dag_workload,
)

from tests.conftest import make_job, run_sim


def dep_job(job_id, deps=(), **kwargs):
    base = make_job(job_id, **kwargs)
    return Job(
        job_id=base.job_id,
        submit_time=base.submit_time,
        duration=base.duration,
        nodes=base.nodes,
        memory_gb=base.memory_gb,
        walltime=base.walltime,
        user=base.user,
        depends_on=tuple(deps),
    )


class TestJobDependencyField:
    def test_default_empty(self):
        assert make_job(1).depends_on == ()

    def test_list_coerced_to_tuple(self):
        job = dep_job(2, deps=[1])
        assert job.depends_on == (1,)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="depend on itself"):
            dep_job(1, deps=(1,))


class TestValidation:
    def test_unknown_dependency_rejected(self):
        jobs = [dep_job(1), dep_job(2, deps=(99,))]
        with pytest.raises(ValueError, match="unknown job 99"):
            validate_dependencies(jobs)

    def test_cycle_detected(self):
        jobs = [dep_job(1, deps=(3,)), dep_job(2, deps=(1,)), dep_job(3, deps=(2,))]
        with pytest.raises(ValueError, match="cycle"):
            validate_dependencies(jobs)

    def test_diamond_is_acyclic(self):
        jobs = [
            dep_job(1),
            dep_job(2, deps=(1,)),
            dep_job(3, deps=(1,)),
            dep_job(4, deps=(2, 3)),
        ]
        validate_dependencies(jobs)  # must not raise

    def test_simulator_validates_on_construction(self):
        jobs = [dep_job(1, deps=(2,)), dep_job(2, deps=(1,))]
        with pytest.raises(ValueError, match="cycle"):
            HPCSimulator(jobs=jobs, scheduler=FCFSScheduler())


class TestExecutionOrdering:
    def test_dependent_waits_for_completion(self):
        jobs = [
            dep_job(1, duration=50.0, nodes=1),
            dep_job(2, deps=(1,), duration=10.0, nodes=1),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(2).start_time >= result.record_for(1).end_time

    def test_chain_serializes_fully(self):
        jobs = chain_workload(6, seed=0, scenario="resource_sparse")
        result = run_sim(jobs, FirstFitScheduler())
        records = sorted(result.records, key=lambda r: r.job.job_id)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.start_time >= prev.end_time - 1e-9

    def test_diamond_ordering(self):
        jobs = [
            dep_job(1, duration=10.0, nodes=1),
            dep_job(2, deps=(1,), duration=20.0, nodes=1),
            dep_job(3, deps=(1,), duration=5.0, nodes=1),
            dep_job(4, deps=(2, 3), duration=1.0, nodes=1),
        ]
        result = run_sim(jobs, FirstFitScheduler(), nodes=8, memory=64.0)
        r = {rec.job.job_id: rec for rec in result.records}
        assert r[2].start_time >= r[1].end_time - 1e-9
        assert r[3].start_time >= r[1].end_time - 1e-9
        assert r[4].start_time >= max(r[2].end_time, r[3].end_time) - 1e-9
        # Jobs 2 and 3 ran concurrently (independent given job 1).
        assert r[3].start_time < r[2].end_time

    def test_dependency_arriving_before_parent_completes(self):
        jobs = [
            dep_job(1, submit=0.0, duration=100.0, nodes=1),
            dep_job(2, submit=5.0, deps=(1,), duration=10.0, nodes=1),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(2).start_time == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "scheduler_name",
        ["fcfs", "fcfs_backfill", "sjf", "ortools_like", "claude-3.7-sim"],
    )
    def test_every_scheduler_respects_dependencies(self, scheduler_name):
        jobs = layered_dag_workload(
            24, seed=3, scenario="resource_sparse", n_layers=3
        )
        sched = create_scheduler(scheduler_name, seed=1)
        result = run_sim(jobs, sched)
        r = {rec.job.job_id: rec for rec in result.records}
        assert len(r) == 24
        for job in jobs:
            for dep in job.depends_on:
                assert r[job.job_id].start_time >= r[dep].end_time - 1e-9


class TestLLMAgentWithDependencies:
    def test_agent_stops_only_after_blocked_jobs_run(self):
        jobs = chain_workload(4, seed=1, scenario="resource_sparse")
        agent = create_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent)
        assert len(result.records) == 4
        stops = [d for d in result.decisions if d.action.kind.value == "Stop"]
        assert len(stops) == 1
        assert stops[0].accepted


class TestDagGenerators:
    def test_chain_structure(self):
        jobs = chain_workload(5, seed=0)
        assert [j.depends_on for j in jobs] == [(), (1,), (2,), (3,), (4,)]

    def test_chain_empty(self):
        assert chain_workload(0) == []

    def test_fork_join_structure(self):
        jobs = fork_join_workload(4, seed=0)
        assert len(jobs) == 6
        by_id = {j.job_id: j for j in jobs}
        assert by_id[1].depends_on == ()
        for w in range(2, 6):
            assert by_id[w].depends_on == (1,)
        assert by_id[6].depends_on == (2, 3, 4, 5)

    def test_fork_join_requires_worker(self):
        with pytest.raises(ValueError):
            fork_join_workload(0)

    def test_layered_dag_layers_only_point_backwards(self):
        jobs = layered_dag_workload(40, seed=5, n_layers=5)
        validate_dependencies(jobs)
        by_id = {j.job_id: j for j in jobs}
        for job in jobs:
            for dep in job.depends_on:
                assert dep < job.job_id
                assert dep in by_id

    def test_layered_dag_with_arrivals(self):
        jobs = layered_dag_workload(20, seed=2, arrival_rate=0.1)
        assert jobs[-1].submit_time > 0.0

    def test_layered_dag_deterministic(self):
        a = layered_dag_workload(30, seed=9)
        b = layered_dag_workload(30, seed=9)
        assert a == b

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            layered_dag_workload(-1)
        with pytest.raises(ValueError):
            layered_dag_workload(5, n_layers=0)
        with pytest.raises(ValueError):
            layered_dag_workload(5, edge_prob=1.5)


class TestCriticalPath:
    def test_chain_critical_path_is_sum(self):
        jobs = [
            dep_job(1, duration=10.0),
            dep_job(2, deps=(1,), duration=20.0),
            dep_job(3, deps=(2,), duration=30.0),
        ]
        assert critical_path_length(jobs) == 60.0

    def test_parallel_critical_path_is_max(self):
        jobs = [dep_job(1, duration=10.0), dep_job(2, duration=25.0)]
        assert critical_path_length(jobs) == 25.0

    def test_empty(self):
        assert critical_path_length([]) == 0.0

    def test_makespan_bounded_below_by_critical_path(self):
        jobs = layered_dag_workload(20, seed=7, scenario="resource_sparse")
        result = run_sim(jobs, FirstFitScheduler())
        assert result.makespan >= critical_path_length(jobs) - 1e-6
