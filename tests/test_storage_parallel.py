"""Sweep engine × sharded store: concurrent per-shard writers must be
indistinguishable (by content digest) from the serial single-file
reference, and resume/failure bookkeeping must survive the layout
change."""

import pytest

from repro.experiments.parallel import expand_cells, run_cells
from repro.experiments.store import FailureSidecar, RunStore
from repro.experiments.storage import (
    ShardedStore,
    open_store,
    store_digest,
)

SCENARIOS = ("adversarial", "resource_sparse")
SIZES = (6,)
SCHEDULERS = ("fcfs", "sjf")


def _cells():
    return expand_cells(SCENARIOS, SIZES, SCHEDULERS)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Serial single-file sweep: the ground-truth archive."""
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    run_cells(_cells(), workers=1, store=path)
    return RunStore(path)


class TestDigestIdentity:
    def test_pooled_sharded_matches_serial_jsonl(
        self, tmp_path, reference
    ):
        """Four workers appending straight to their cells' shards end
        up content-identical to the serial single-file reference."""
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        runs = run_cells(_cells(), workers=4, store=store)
        assert len(runs) == len(_cells())
        assert store_digest(store) == store_digest(reference)

    def test_pooled_shard_files_hold_the_runs(self, tmp_path):
        """Worker-side appends actually land in the shard files (the
        parent does accounting only)."""
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        run_cells(_cells(), workers=4, store=store)
        reread = ShardedStore(tmp_path / "runs.store")
        assert len(reread) == len(_cells())

    def test_inline_sharded_matches_too(self, tmp_path, reference):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        run_cells(_cells(), workers=1, store=store)
        assert store_digest(store) == store_digest(reference)


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        run_cells(_cells(), workers=4, store=store)
        ran = run_cells(
            _cells(), workers=4, store=store, resume=True
        )
        assert ran == []  # everything already in the store

    def test_resume_runs_only_missing_cells(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        first_half = _cells()[:2]
        run_cells(first_half, workers=1, store=store)
        ran = run_cells(
            _cells(), workers=4, store=store, resume=True
        )
        assert {r.key for r in ran} == {
            c.key for c in _cells()[2:]
        }
        assert store.completed_keys() == {c.key for c in _cells()}


class TestStorePathCoercion:
    def test_run_cells_accepts_sharded_path(self, tmp_path):
        """A path holding a sharded store is sniffed by open_store."""
        seed = ShardedStore(tmp_path / "runs.store", n_shards=2)
        seed.ensure_initialized()
        run_cells(_cells()[:1], workers=1, store=tmp_path / "runs.store")
        assert len(ShardedStore(tmp_path / "runs.store")) == 1


class TestFailureSidecar:
    def test_sidecar_path_derived_from_backend(self, tmp_path):
        flat = RunStore(tmp_path / "runs.jsonl")
        sharded = ShardedStore(tmp_path / "runs.store", n_shards=2)
        assert FailureSidecar.for_store(flat).path == (
            tmp_path / "runs.jsonl.failures"
        )
        assert FailureSidecar.for_store(sharded).path == (
            tmp_path / "runs.store" / "failures.jsonl"
        )

    def test_open_store_roundtrip_sidecar(self, tmp_path):
        sharded = ShardedStore(tmp_path / "runs.store", n_shards=2)
        sharded.ensure_initialized()
        reopened = open_store(tmp_path / "runs.store")
        assert (
            FailureSidecar.for_store(reopened).path
            == sharded.sidecar_path
        )
