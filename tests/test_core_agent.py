"""Integration tests for the ReAct scheduling agent (Algorithm 1)."""


from repro.core.agent import ReActSchedulingAgent, create_llm_scheduler
from repro.core.backends import ScriptedBackend
from repro.sim.actions import ActionKind

from tests.conftest import make_job, run_sim


class TestEndToEnd:
    def test_schedules_full_workload(self):
        jobs = [make_job(i, submit=i * 2.0, duration=20.0, nodes=2) for i in range(1, 8)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        assert len(result.records) == 7

    def test_emits_final_stop(self):
        jobs = [make_job(1, duration=10.0), make_job(2, duration=5.0)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        stops = [d for d in result.decisions if d.action.kind is ActionKind.STOP]
        assert len(stops) == 1
        assert stops[0].accepted

    def test_llm_calls_recorded(self):
        jobs = [make_job(i, duration=10.0, nodes=4) for i in range(1, 5)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        calls = result.extras["llm_calls"]
        assert len(calls) == len(result.decisions)
        placements = [c for c in calls if c.accepted and c.is_placement]
        assert len(placements) == 4

    def test_thought_in_decision_meta(self):
        jobs = [make_job(1)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent)
        assert "thought" in result.decisions[0].meta
        assert result.decisions[0].meta["latency_s"] > 0

    def test_deterministic_under_seed(self):
        jobs = [make_job(i, duration=15.0, nodes=3) for i in range(1, 10)]
        a = run_sim(jobs, create_llm_scheduler("o4-mini-sim", seed=4), nodes=8, memory=64.0)
        b = run_sim(jobs, create_llm_scheduler("o4-mini-sim", seed=4), nodes=8, memory=64.0)
        assert {r.job.job_id: r.start_time for r in a.records} == {
            r.job.job_id: r.start_time for r in b.records
        }

    def test_reset_between_runs(self):
        jobs = [make_job(i, duration=15.0, nodes=3) for i in range(1, 6)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=2)
        first = run_sim(jobs, agent, nodes=8, memory=64.0)
        second = run_sim(jobs, agent, nodes=8, memory=64.0)
        assert len(first.extras["llm_calls"]) == len(second.extras["llm_calls"])


class TestConstraintFeedbackLoop:
    def test_rejection_appends_feedback(self):
        jobs = [
            make_job(1, duration=100.0, nodes=8),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
        ]
        agent = create_llm_scheduler(
            "claude-3.7-sim", seed=1, hallucination_rate=1.0
        )
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        rejected = result.rejected_decisions
        assert rejected
        feedback_entries = [
            e for e in agent.scratchpad.entries if e.feedback
        ]
        assert feedback_entries
        assert "cannot be started" in feedback_entries[0].feedback

    def test_rejected_calls_marked_not_accepted(self):
        jobs = [
            make_job(1, duration=100.0, nodes=8),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
        ]
        agent = create_llm_scheduler(
            "claude-3.7-sim", seed=1, hallucination_rate=1.0
        )
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        calls = result.extras["llm_calls"]
        assert any(not c.accepted for c in calls)
        # Overhead accounting excludes rejected calls.
        assert agent.total_elapsed_s < sum(c.latency_s for c in calls)

    def test_run_completes_despite_hallucinations(self):
        jobs = [make_job(i, submit=i * 1.0, duration=30.0, nodes=4) for i in range(1, 8)]
        agent = create_llm_scheduler(
            "o4-mini-sim", seed=0, hallucination_rate=0.5
        )
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        assert len(result.records) == 7


class TestMalformedReplies:
    def test_unparseable_reply_becomes_delay_with_feedback(self):
        backend = ScriptedBackend(
            [
                "I think we should start job one maybe?",  # no Action line
                "Thought: ok\nAction: StartJob(job_id=1)",
                "Thought: next\nAction: StartJob(job_id=2)",
                "Thought: done\nAction: Stop",
            ]
        )
        agent = ReActSchedulingAgent(backend)
        jobs = [make_job(1, duration=10.0), make_job(2, submit=1.0, duration=10.0)]
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        assert len(result.records) == 2
        # The garbage reply surfaced as a corrective feedback entry.
        feedback = [e.feedback for e in agent.scratchpad.entries if e.feedback]
        assert any("could not be parsed" in f for f in feedback)

    def test_parse_failure_call_not_accepted(self):
        backend = ScriptedBackend(
            [
                "gibberish",
                "Thought: ok\nAction: StartJob(job_id=1)",
                "Thought: next\nAction: StartJob(job_id=2)",
                "Thought: done\nAction: Stop",
            ]
        )
        agent = ReActSchedulingAgent(backend)
        jobs = [make_job(1, duration=10.0), make_job(2, submit=1.0, duration=5.0)]
        run_sim(jobs, agent, nodes=8, memory=64.0)
        assert agent.calls[0].accepted is False


class TestConfiguration:
    def test_scratchpad_window_configurable(self):
        agent = create_llm_scheduler("claude-3.7-sim", scratchpad_window=3)
        assert agent.scratchpad.window == 3

    def test_name_defaults_to_model(self):
        agent = create_llm_scheduler("o4-mini-sim")
        assert agent.name == "o4-mini-sim"

    def test_name_override(self):
        backend = ScriptedBackend(["Thought: x\nAction: Delay"])
        agent = ReActSchedulingAgent(backend, name="my-agent")
        assert agent.name == "my-agent"

    def test_collect_extras_keys(self):
        jobs = [make_job(1)]
        agent = create_llm_scheduler("claude-3.7-sim", seed=0)
        result = run_sim(jobs, agent)
        assert {"llm_calls", "model", "scratchpad_entries", "scratchpad_text"} <= set(
            result.extras
        )
