"""Unit tests for the resource-profile packing engine."""

import numpy as np
import pytest

from repro.schedulers.packing import (
    PackingError,
    ResourceProfile,
    pack_order,
    plan_makespan,
    plan_total_completion,
)

from tests.conftest import make_job


class TestResourceProfile:
    def test_empty_profile_starts_now(self):
        profile = ResourceProfile(10.0, 8, 64.0)
        assert profile.earliest_start(4, 16.0, 100.0, not_before=10.0) == 10.0

    def test_respects_not_before(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        assert profile.earliest_start(1, 1.0, 10.0, not_before=25.0) == 25.0

    def test_waits_for_release(self):
        # 2 free nodes now; 6 more at t=50.
        profile = ResourceProfile(0.0, 2, 16.0, releases=[(50.0, 6, 48.0)])
        assert profile.earliest_start(4, 8.0, 10.0, not_before=0.0) == 50.0

    def test_fits_before_release_if_small(self):
        profile = ResourceProfile(0.0, 2, 16.0, releases=[(50.0, 6, 48.0)])
        assert profile.earliest_start(2, 8.0, 10.0, not_before=0.0) == 0.0

    def test_reserve_blocks_interval(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        profile.reserve(0.0, 100.0, 8, 64.0)
        assert profile.earliest_start(1, 1.0, 10.0, not_before=0.0) == 100.0

    def test_gap_must_cover_full_duration(self):
        # Free 8 nodes until t=10, then busy [10, 50), then free.
        profile = ResourceProfile(0.0, 8, 64.0)
        profile.reserve(10.0, 40.0, 8, 64.0)
        # A 10s job fits in the [0, 10) gap...
        assert profile.earliest_start(2, 1.0, 10.0, not_before=0.0) == 0.0
        # ...but a 20s job must wait for t=50.
        assert profile.earliest_start(2, 1.0, 20.0, not_before=0.0) == 50.0

    def test_oversubscribe_raises(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        profile.reserve(0.0, 10.0, 6, 8.0)
        with pytest.raises(PackingError):
            profile.reserve(5.0, 10.0, 6, 8.0)

    def test_never_fits_raises(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        with pytest.raises(PackingError, match="never fits"):
            profile.earliest_start(16, 1.0, 10.0, not_before=0.0)

    def test_capacity_at(self):
        profile = ResourceProfile(0.0, 8, 64.0, releases=[(10.0, 2, 8.0)])
        assert profile.capacity_at(0.0) == (8.0, 64.0)
        assert profile.capacity_at(10.0) == (10.0, 72.0)

    def test_memory_constraint_checked(self):
        profile = ResourceProfile(0.0, 8, 16.0, releases=[(30.0, 0, 48.0)])
        assert profile.earliest_start(1, 32.0, 5.0, not_before=0.0) == 30.0


class TestResourceProfileEdgeCases:
    def test_zero_duration_reservation_is_noop(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        profile.reserve(10.0, 0.0, 8, 64.0)
        # No capacity consumed anywhere, including at the instant itself.
        assert profile.earliest_start(8, 64.0, 5.0, not_before=0.0) == 0.0
        assert profile.capacity_at(10.0) == (8.0, 64.0)

    def test_zero_duration_query_waits_for_feasible_interval(self):
        profile = ResourceProfile(0.0, 8, 64.0)
        profile.reserve(0.0, 100.0, 8, 64.0)
        # An instantaneous request spans no interval, but its anchor
        # interval must still be feasible: it waits for the release.
        assert profile.earliest_start(8, 64.0, 0.0, not_before=0.0) == 100.0
        assert profile.earliest_start(1, 1.0, 0.0, not_before=40.0) == 100.0

    def test_coincident_release_times_merge(self):
        profile = ResourceProfile(
            0.0, 0, 0.0, releases=[(50.0, 3, 24.0), (50.0, 5, 40.0)]
        )
        assert profile.times.size == 2  # origin + one merged breakpoint
        assert profile.capacity_at(50.0) == (8.0, 64.0)
        assert profile.earliest_start(8, 64.0, 10.0, not_before=0.0) == 50.0

    def test_release_before_origin_clamps_to_origin(self):
        profile = ResourceProfile(100.0, 2, 16.0, releases=[(40.0, 6, 48.0)])
        assert profile.times.size == 1
        assert profile.capacity_at(100.0) == (8.0, 64.0)

    def test_reservation_at_profile_origin(self):
        profile = ResourceProfile(25.0, 8, 64.0)
        profile.reserve(25.0, 10.0, 8, 64.0)
        assert profile.capacity_at(25.0) == (0.0, 0.0)
        assert profile.earliest_start(1, 1.0, 1.0, not_before=25.0) == 35.0

    def test_reserve_trusted_matches_checked_reserve(self):
        checked = ResourceProfile(0.0, 8, 64.0, releases=[(30.0, 2, 8.0)])
        trusted = ResourceProfile(0.0, 8, 64.0, releases=[(30.0, 2, 8.0)])
        for start, dur, nodes, mem in [
            (0.0, 10.0, 4, 16.0),
            (5.0, 20.0, 2, 8.0),
            (30.0, 5.0, 4, 32.0),
        ]:
            checked.reserve(start, dur, nodes, mem)
            trusted.reserve_trusted(start, dur, nodes, mem)
        np.testing.assert_array_equal(checked.times, trusted.times)
        np.testing.assert_array_equal(checked.free_nodes, trusted.free_nodes)
        np.testing.assert_array_equal(
            checked.free_memory, trusted.free_memory
        )

    def test_growth_preserves_state(self):
        profile = ResourceProfile(0.0, 256, 2048.0)
        starts = []
        for s in range(120):  # far beyond the initial capacity
            start = profile.earliest_start(2, 16.0, 3.0, not_before=1.5 * s)
            profile.reserve(start, 3.0, 2, 16.0)
            starts.append(start)
        assert starts == [1.5 * s for s in range(120)]
        assert profile.times.size > 120


class TestPackOrder:
    def test_sequential_when_full(self):
        jobs = [
            make_job(1, duration=10.0, nodes=8),
            make_job(2, duration=20.0, nodes=8),
        ]
        packed = pack_order(jobs, now=0.0, free_nodes=8, free_memory_gb=64.0)
        assert packed[0].start == 0.0
        assert packed[1].start == 10.0

    def test_later_job_can_start_earlier(self):
        # Order is a priority list: job 2 (second in order) fits in the
        # gap before job 1's huge ask is satisfiable.
        jobs = [
            make_job(1, duration=10.0, nodes=8),
            make_job(2, duration=5.0, nodes=8),
            make_job(3, duration=3.0, nodes=2),
        ]
        packed = pack_order(
            [jobs[0], jobs[1], jobs[2]],
            now=0.0, free_nodes=8, free_memory_gb=64.0,
        )
        by_id = {p.job.job_id: p for p in packed}
        assert by_id[1].start == 0.0
        assert by_id[2].start == 10.0
        assert by_id[3].start == 15.0

    def test_respects_submit_times(self):
        jobs = [make_job(1, submit=42.0, duration=10.0, nodes=1)]
        packed = pack_order(jobs, now=0.0, free_nodes=8, free_memory_gb=64.0)
        assert packed[0].start == 42.0

    def test_respects_running_releases(self):
        jobs = [make_job(1, duration=10.0, nodes=8)]
        packed = pack_order(
            jobs,
            now=0.0,
            free_nodes=2,
            free_memory_gb=64.0,
            releases=[(30.0, 6, 0.0)],
        )
        assert packed[0].start == 30.0

    def test_packed_plan_never_oversubscribes(self):
        rng = np.random.default_rng(3)
        jobs = [
            make_job(
                i,
                duration=float(rng.integers(5, 50)),
                nodes=int(rng.integers(1, 9)),
                memory=float(rng.integers(1, 65)),
            )
            for i in range(1, 40)
        ]
        packed = pack_order(jobs, now=0.0, free_nodes=8, free_memory_gb=64.0)
        # Sweep check against capacity.
        points = []
        for p in packed:
            points.append((p.end, 0, -p.job.nodes, -p.job.memory_gb))
            points.append((p.start, 1, p.job.nodes, p.job.memory_gb))
        points.sort(key=lambda x: (x[0], x[1]))
        nodes = mem = 0.0
        for _, _, dn, dm in points:
            nodes += dn
            mem += dm
            assert nodes <= 8 + 1e-9
            assert mem <= 64.0 + 1e-6

    def test_plan_statistics(self):
        jobs = [
            make_job(1, duration=10.0, nodes=8),
            make_job(2, duration=20.0, nodes=8),
        ]
        packed = pack_order(jobs, now=0.0, free_nodes=8, free_memory_gb=64.0)
        assert plan_makespan(packed, 0.0) == 30.0
        assert plan_total_completion(packed) == 40.0

    def test_empty_plan(self):
        assert plan_makespan([], 0.0) == 0.0
        assert plan_total_completion([]) == 0.0


class TestPackStats:
    def jobs(self, n=10):
        return [make_job(i + 1, duration=10.0 * (i + 1), nodes=2)
                for i in range(n)]

    def test_counters_track_packing_work(self):
        from repro.schedulers.packing import IncrementalPacker

        packer = IncrementalPacker(now=0.0, free_nodes=8, free_memory_gb=64.0)
        jobs = self.jobs(10)
        packer.pack(jobs)
        assert packer.stats.full_packs == 1
        assert packer.stats.jobs_packed == 10
        cand = list(jobs)
        cand[4], cand[7] = cand[7], cand[4]
        packer.pack_from(cand, 4)
        assert packer.stats.suffix_packs == 1
        assert packer.stats.jobs_packed == 16  # 10 + suffix of 6
        packer.commit(cand, 4, packer.pack_from(cand, 4))
        assert packer.stats.commits == 1

    def test_as_dict_round_trips_every_counter(self):
        from repro.schedulers.packing import PackStats

        stats = PackStats(jobs_packed=3, commits=1)
        d = stats.as_dict()
        assert d["jobs_packed"] == 3
        assert d["commits"] == 1
        assert set(d) == {
            "jobs_packed", "jobs_replayed", "full_packs", "suffix_packs",
            "commits", "incumbents_saved", "incumbents_loaded",
            "incumbents_evicted",
        }


class TestIncumbentRetention:
    def packer(self, retain=3):
        from repro.schedulers.packing import IncrementalPacker

        return IncrementalPacker(
            now=0.0, free_nodes=8, free_memory_gb=64.0,
            retain_incumbents=retain,
        )

    def jobs(self, n=12):
        return [make_job(i + 1, duration=5.0 * (i + 1), nodes=2)
                for i in range(n)]

    def test_saved_incumbent_restores_exact_pack_state(self):
        packer = self.packer()
        jobs = self.jobs()
        a = packer.pack(jobs)
        packer.save_incumbent("a")
        b_order = list(reversed(jobs))
        packer.pack(b_order)
        packer.save_incumbent("b")
        # Evaluate a child sharing A's prefix up to 6: must equal a
        # from-scratch pack of the child order.
        assert packer.load_incumbent("a")
        child = jobs[:6] + list(reversed(jobs[6:]))
        got = packer.pack_from(child, 6)
        expected = pack_order(
            child, now=0.0, free_nodes=8, free_memory_gb=64.0
        )
        assert [(p.job.job_id, p.start) for p in got] == [
            (p.job.job_id, p.start) for p in expected
        ]
        # A's own placements are untouched by B having been packed.
        assert packer.load_incumbent("a")
        assert [(p.job.job_id, p.start) for p in packer.pack_from(jobs, 12)] \
            == [(p.job.job_id, p.start) for p in a]

    def test_fifo_eviction_bounds_memory(self):
        packer = self.packer(retain=2)
        jobs = self.jobs(4)
        for key in ("a", "b", "c"):
            packer.pack(jobs)
            packer.save_incumbent(key)
        assert not packer.load_incumbent("a")  # evicted
        assert packer.load_incumbent("b")
        assert packer.load_incumbent("c")
        assert packer.stats.incumbents_evicted == 1

    def test_retention_disabled_by_default(self):
        from repro.schedulers.packing import IncrementalPacker

        packer = IncrementalPacker(now=0.0, free_nodes=8, free_memory_gb=64.0)
        packer.pack(self.jobs(4))
        packer.save_incumbent("a")
        assert not packer.load_incumbent("a")

    def test_clear_incumbents(self):
        packer = self.packer()
        packer.pack(self.jobs(4))
        packer.save_incumbent("a")
        packer.clear_incumbents()
        assert not packer.load_incumbent("a")

    def test_commit_shares_prefix_snapshots(self):
        # A child committed at cut c keeps the parent's checkpoints at
        # or below c by reference — the O(k) snapshot reuse the GA
        # depends on for bounded memory.
        from repro.schedulers.packing import IncrementalPacker

        packer = IncrementalPacker(
            now=0.0, free_nodes=8, free_memory_gb=64.0,
            checkpoint_stride=2, retain_incumbents=4,
        )
        jobs = self.jobs(8)
        packer.pack(jobs)
        parent_snapshots = {
            pos: snap for pos, snap in packer._inc.checkpoints.items()
        }
        child = jobs[:4] + list(reversed(jobs[4:]))
        placements = packer.pack_from(child, 4)
        packer.commit(child, 4, placements)
        for pos, snap in packer._inc.checkpoints.items():
            assert pos <= 4
            assert snap is parent_snapshots[pos]
