"""Unit tests for ablation heuristics."""

from repro.schedulers.heuristics import (
    FirstFitScheduler,
    LargestFirstScheduler,
    RandomScheduler,
)

from tests.conftest import make_job, run_sim


class TestFirstFit:
    def test_skips_blocked_head(self):
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=6),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
            make_job(3, submit=2.0, duration=5.0, nodes=1),
        ]
        result = run_sim(jobs, FirstFitScheduler(), nodes=8, memory=64.0)
        assert result.record_for(3).start_time == 2.0

    def test_prefers_queue_order_among_feasible(self):
        jobs = [
            make_job(1, duration=10.0, nodes=8),
            make_job(2, duration=1.0, nodes=8),
        ]
        result = run_sim(jobs, FirstFitScheduler(), nodes=8, memory=64.0)
        assert result.record_for(1).start_time == 0.0


class TestLargestFirst:
    def test_picks_biggest_footprint(self):
        jobs = [
            make_job(1, duration=10.0, nodes=1),    # 10 node-s
            make_job(2, duration=10.0, nodes=8),    # 80 node-s
            make_job(3, duration=100.0, nodes=2),   # 200 node-s
        ]
        result = run_sim(jobs, LargestFirstScheduler(), nodes=8, memory=64.0)
        assert result.record_for(3).start_time == 0.0

    def test_falls_back_to_feasible(self):
        jobs = [
            make_job(1, submit=0.0, duration=50.0, nodes=6),
            make_job(2, submit=1.0, duration=100.0, nodes=8),  # infeasible now
            make_job(3, submit=1.0, duration=10.0, nodes=2),
        ]
        result = run_sim(jobs, LargestFirstScheduler(), nodes=8, memory=64.0)
        assert result.record_for(3).start_time == 1.0


class TestRandom:
    def test_deterministic_under_seed(self):
        jobs = [make_job(i, duration=10.0, nodes=2) for i in range(1, 10)]
        a = run_sim(jobs, RandomScheduler(seed=5), nodes=4, memory=64.0)
        b = run_sim(jobs, RandomScheduler(seed=5), nodes=4, memory=64.0)
        assert [r.job.job_id for r in a.records] == [
            r.job.job_id for r in b.records
        ]

    def test_reset_restores_stream(self):
        jobs = [make_job(i, duration=10.0, nodes=2) for i in range(1, 10)]
        sched = RandomScheduler(seed=5)
        a = run_sim(jobs, sched, nodes=4, memory=64.0)
        b = run_sim(jobs, sched, nodes=4, memory=64.0)  # run_sim resets
        assert [r.job.job_id for r in a.records] == [
            r.job.job_id for r in b.records
        ]

    def test_only_feasible_choices(self):
        jobs = [
            make_job(1, duration=50.0, nodes=8),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
        ]
        result = run_sim(jobs, RandomScheduler(seed=0), nodes=8, memory=64.0)
        result.verify_capacity()
        assert len(result.records) == 2
