"""Tests for workload characterization."""

import pytest

from repro.analysis.workload_stats import characterize
from repro.workloads.generator import generate_workload

from tests.conftest import make_job


class TestCharacterize:
    def test_empty(self):
        stats = characterize([])
        assert stats.n_jobs == 0
        assert stats.offered_load == 0.0

    def test_hand_computed(self):
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=4, user="a"),
            make_job(2, submit=100.0, duration=100.0, nodes=4, user="b"),
        ]
        stats = characterize(jobs, total_nodes=8)
        assert stats.n_jobs == 2
        assert stats.n_users == 2
        assert stats.duration_mean_s == 100.0
        assert stats.duration_cv == 0.0
        assert stats.nodes_mean == 4.0
        assert stats.total_node_seconds == 800.0
        assert stats.arrival_span_s == 100.0
        # 800 node-s over 8 nodes × 100 s window = 1.0
        assert stats.offered_load == pytest.approx(1.0)
        assert stats.large_job_fraction == 0.0

    def test_all_at_zero_uses_minimal_window(self):
        jobs = [make_job(i, duration=100.0, nodes=8) for i in range(1, 4)]
        stats = characterize(jobs, total_nodes=8)
        # 2400 node-s; min-makespan window = 2400/8 = 300 s → load 1.0.
        assert stats.offered_load == pytest.approx(1.0)

    def test_large_job_fraction(self):
        jobs = [
            make_job(1, nodes=200),
            make_job(2, nodes=10),
        ]
        stats = characterize(jobs, total_nodes=256)
        assert stats.large_job_fraction == pytest.approx(0.5)

    def test_scenarios_have_expected_pressure(self):
        sparse = characterize(generate_workload("resource_sparse", 60, seed=0))
        het = characterize(generate_workload("heterogeneous_mix", 60, seed=0))
        # The paper's flat scenario really is uncontended; the mix is not.
        assert sparse.offered_load < 0.2
        assert het.offered_load > 0.8
        assert het.heterogeneity > sparse.heterogeneity

    def test_summary_string(self):
        stats = characterize(generate_workload("adversarial", 20, seed=0))
        text = stats.summary()
        assert "20 jobs" in text
        assert "offered load" in text
