"""Unit tests for FCFS normalization."""

import math

import pytest

from repro.metrics.normalize import (
    HIGHER_BETTER,
    LOWER_BETTER,
    is_improvement,
    normalize_to_baseline,
)
from repro.metrics.objectives import METRIC_NAMES


class TestNormalize:
    def test_simple_ratio(self):
        out = normalize_to_baseline({"makespan": 50.0}, {"makespan": 100.0})
        assert out["makespan"] == pytest.approx(0.5)

    def test_zero_over_zero_is_nan(self):
        out = normalize_to_baseline({"avg_wait_time": 0.0}, {"avg_wait_time": 0.0})
        assert math.isnan(out["avg_wait_time"])

    def test_nonzero_over_zero_is_inf(self):
        out = normalize_to_baseline({"avg_wait_time": 5.0}, {"avg_wait_time": 0.0})
        assert math.isinf(out["avg_wait_time"])

    def test_missing_baseline_key_raises(self):
        with pytest.raises(KeyError):
            normalize_to_baseline({"makespan": 1.0}, {})

    def test_baseline_self_normalizes_to_one(self):
        values = {m: 3.0 for m in METRIC_NAMES}
        out = normalize_to_baseline(values, values)
        assert all(v == pytest.approx(1.0) for v in out.values())


class TestOrientation:
    def test_every_metric_classified(self):
        from repro.metrics.disruption import DISRUPTION_METRIC_NAMES

        assert (
            set(METRIC_NAMES) | set(DISRUPTION_METRIC_NAMES)
            == LOWER_BETTER | HIGHER_BETTER
        )
        assert not (LOWER_BETTER & HIGHER_BETTER)

    def test_lower_better_improvement(self):
        assert is_improvement("makespan", 0.8)
        assert not is_improvement("makespan", 1.2)

    def test_higher_better_improvement(self):
        assert is_improvement("throughput", 1.2)
        assert not is_improvement("throughput", 0.8)

    def test_nan_is_not_improvement(self):
        assert not is_improvement("avg_wait_time", math.nan)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            is_improvement("quux", 1.0)
