"""CLI surface of the storage redesign: ``matrix --store-format``,
``store migrate``/``digest``, sharded ``store doctor``, and
``report --where``."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.storage import MANIFEST_NAME, shard_name

MATRIX = [
    "matrix", "--scenarios", "adversarial", "--sizes", "6",
    "--schedulers", "fcfs", "sjf",
]


class TestParser:
    def test_store_format_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(MATRIX + [
            "--out", "x.store", "--store-format", "sharded",
            "--shards", "8",
        ])
        assert args.store_format == "sharded"
        assert args.shards == 8

    def test_store_subcommands_parse(self):
        parser = build_parser()
        assert parser.parse_args(
            ["store", "migrate", "a.jsonl", "b.store"]
        ).store_command == "migrate"
        assert parser.parse_args(
            ["store", "digest", "a.jsonl"]
        ).store_command == "digest"

    def test_report_where_parses(self):
        args = build_parser().parse_args([
            "report", "--store", "x.jsonl",
            "--where", "scenario=adversarial", "--where", "n_jobs=6",
        ])
        assert args.where == ["scenario=adversarial", "n_jobs=6"]


class TestMatrixStoreFormat:
    def test_sharded_sweep_and_digest_identity(self, tmp_path, capsys):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.store"),
            "--store-format", "sharded", "--shards", "4",
            "--workers", "4",
        ]) == 0
        assert main(MATRIX + [
            "--out", str(tmp_path / "ref.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert main(
            ["store", "digest", str(tmp_path / "runs.store")]
        ) == 0
        sharded_digest = capsys.readouterr().out.strip()
        assert main(
            ["store", "digest", str(tmp_path / "ref.jsonl")]
        ) == 0
        assert capsys.readouterr().out.strip() == sharded_digest

    def test_shards_without_sharded_format_rejected(self, tmp_path):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.jsonl"), "--shards", "4",
        ]) == 2

    def test_format_mismatch_rejected(self, tmp_path, capsys):
        assert main(MATRIX + [
            "--out", str(tmp_path / "ref.jsonl"),
        ]) == 0
        assert main(MATRIX + [
            "--out", str(tmp_path / "ref.jsonl"),
            "--store-format", "sharded",
        ]) == 2
        assert "migrate" in capsys.readouterr().err


class TestStoreMigrateCLI:
    def _sweep(self, tmp_path):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.jsonl"),
        ]) == 0
        return tmp_path / "runs.jsonl"

    def test_round_trip_byte_identical(self, tmp_path, capsys):
        src = self._sweep(tmp_path)
        assert main([
            "store", "migrate", str(src), str(tmp_path / "runs.store"),
            "--shards", "4",
        ]) == 0
        assert "jsonl->sharded" in capsys.readouterr().out
        assert main([
            "store", "migrate", str(tmp_path / "runs.store"),
            str(tmp_path / "back.jsonl"),
        ]) == 0
        assert "sharded->jsonl" in capsys.readouterr().out
        assert (
            (tmp_path / "back.jsonl").read_bytes() == src.read_bytes()
        )

    def test_shards_flag_rejected_on_sharded_source(self, tmp_path):
        src = self._sweep(tmp_path)
        assert main([
            "store", "migrate", str(src), str(tmp_path / "runs.store"),
        ]) == 0
        assert main([
            "store", "migrate", str(tmp_path / "runs.store"),
            str(tmp_path / "back.jsonl"), "--shards", "4",
        ]) == 2

    def test_existing_dest_rejected(self, tmp_path, capsys):
        src = self._sweep(tmp_path)
        assert main([
            "store", "migrate", str(src), str(src),
        ]) == 2
        assert "exists" in capsys.readouterr().err


class TestStoreDoctorSharded:
    def test_healthy_exit_zero(self, tmp_path, capsys):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.store"),
            "--store-format", "sharded", "--shards", "2",
        ]) == 0
        assert main(["store", "doctor", str(tmp_path / "runs.store")]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_corrupt_shard_exit_one_and_repairs(self, tmp_path, capsys):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.store"),
            "--store-format", "sharded", "--shards", "2",
        ]) == 0
        shard = tmp_path / "runs.store" / shard_name(0)
        shard.write_text("{garbage\n" + shard.read_text())
        assert main(["store", "doctor", str(tmp_path / "runs.store")]) == 1
        capsys.readouterr()
        # Second pass: the rewrite removed the corruption.
        assert main(["store", "doctor", str(tmp_path / "runs.store")]) == 0

    def test_lost_manifest_repaired(self, tmp_path, capsys):
        assert main(MATRIX + [
            "--out", str(tmp_path / "runs.store"),
            "--store-format", "sharded", "--shards", "2",
        ]) == 0
        (tmp_path / "runs.store" / MANIFEST_NAME).unlink()
        assert main(["store", "doctor", str(tmp_path / "runs.store")]) == 1
        assert (tmp_path / "runs.store" / MANIFEST_NAME).exists()

    def test_missing_store_exit_two(self, tmp_path):
        assert main(["store", "doctor", str(tmp_path / "nope")]) == 2


class TestReportWhere:
    @pytest.fixture()
    def archive(self, tmp_path):
        path = tmp_path / "runs.store"
        assert main(MATRIX + [
            "--out", str(path), "--store-format", "sharded",
            "--shards", "2", "--seeds", "0", "1",
        ]) == 0
        return path

    def test_filtered_report(self, archive, capsys):
        capsys.readouterr()
        assert main([
            "report", "--store", str(archive),
            "--where", "workload_seed=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "filtered: workload_seed=1" in out
        assert "seed 1" in out
        assert "seed 0" not in out

    def test_unknown_field_exit_two(self, archive, capsys):
        assert main([
            "report", "--store", str(archive), "--where", "bogus=1",
        ]) == 2
        assert "queryable fields" in capsys.readouterr().err

    def test_malformed_where_exit_two(self, archive):
        assert main([
            "report", "--store", str(archive), "--where", "nosign",
        ]) == 2

    def test_empty_result_exit_one(self, archive, capsys):
        assert main([
            "report", "--store", str(archive),
            "--where", "scenario=resource_sparse",
        ]) == 1
        assert "no runs" in capsys.readouterr().err


class TestSweepReadsBackThroughIterRuns:
    def test_resume_report_includes_prior_cells(self, tmp_path, capsys):
        """A resumed matrix prints the full table, reading the already
        -complete cells back through the keyed query API."""
        out = str(tmp_path / "runs.store")
        assert main(MATRIX + [
            "--out", out, "--store-format", "sharded", "--shards", "2",
        ]) == 0
        capsys.readouterr()
        assert main(MATRIX + [
            "--out", out, "--store-format", "sharded", "--resume",
        ]) == 0
        assert "sjf" in capsys.readouterr().out
