"""Tests for the plan-ahead (batched) agent."""

import pytest

from repro.core.batching import BatchedReActAgent, create_batched_llm_scheduler
from repro.core.agent import create_llm_scheduler
from repro.core.profiles import CLAUDE_37_SIM
from repro.metrics.objectives import compute_metrics
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


class TestBasics:
    def test_schedules_everything(self):
        jobs = generate_workload("heterogeneous_mix", 25, seed=1)
        agent = create_batched_llm_scheduler(batch_size=4, seed=0)
        result = run_sim(jobs, agent)
        assert len(result.records) == 25

    def test_batch_size_one_allowed(self):
        jobs = generate_workload("resource_sparse", 8, seed=0)
        agent = create_batched_llm_scheduler(batch_size=1, seed=0)
        result = run_sim(jobs, agent)
        assert len(result.records) == 8

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchedReActAgent(CLAUDE_37_SIM, batch_size=0)

    def test_name_encodes_batch(self):
        agent = create_batched_llm_scheduler("o4-mini-sim", batch_size=8)
        assert agent.name == "o4-mini-sim-batch8"

    def test_deterministic(self):
        jobs = generate_workload("heterogeneous_mix", 20, seed=2)
        a = run_sim(jobs, create_batched_llm_scheduler(batch_size=4, seed=5))
        b = run_sim(jobs, create_batched_llm_scheduler(batch_size=4, seed=5))
        assert {r.job.job_id: r.start_time for r in a.records} == {
            r.job.job_id: r.start_time for r in b.records
        }


class TestCallReduction:
    def test_fewer_placement_calls_than_per_decision_agent(self):
        jobs = generate_workload(
            "heterogeneous_mix", 40, seed=3, arrival_mode="zero"
        )
        single = run_sim(jobs, create_llm_scheduler("claude-3.7-sim", seed=0))
        batched = run_sim(
            jobs, create_batched_llm_scheduler(batch_size=8, seed=0)
        )

        def placements(result):
            return sum(
                1 for c in result.extras["llm_calls"] if c.is_placement
            )

        assert placements(batched) < placements(single) / 2
        assert len(batched.extras["llm_calls"]) < len(
            single.extras["llm_calls"]
        )

    def test_delay_cooldown_suppresses_saturation_calls(self):
        jobs = generate_workload(
            "heterogeneous_mix", 40, seed=3, arrival_mode="zero"
        )
        plain = run_sim(
            jobs, create_batched_llm_scheduler(batch_size=8, seed=0)
        )
        periodic = run_sim(
            jobs,
            create_batched_llm_scheduler(
                batch_size=8, delay_cooldown_s=300.0, seed=0
            ),
        )
        assert len(periodic.extras["llm_calls"]) < len(
            plain.extras["llm_calls"]
        )
        assert len(periodic.records) == 40

    def test_batch_of_one_call_count_comparable(self):
        jobs = generate_workload(
            "heterogeneous_mix", 15, seed=3, arrival_mode="zero"
        )
        batched = run_sim(
            jobs, create_batched_llm_scheduler(batch_size=1, seed=0)
        )
        assert len(batched.extras["llm_calls"]) >= 15


class TestBatchInvalidation:
    def test_new_arrivals_invalidate_batch(self):
        # Jobs trickle in: each arrival changes the queue beyond the
        # plan's own placements, so batches must be replanned.
        jobs = [
            make_job(i, submit=i * 100.0, duration=50.0, nodes=2)
            for i in range(1, 8)
        ]
        agent = create_batched_llm_scheduler(batch_size=4, seed=0)
        result = run_sim(jobs, agent, nodes=8, memory=64.0)
        assert len(result.records) == 7
        result.verify_capacity()

    def test_rejection_drops_plan(self):
        profile = CLAUDE_37_SIM.with_hallucination_rate(0.5)
        jobs = generate_workload("high_parallelism", 20, seed=4)
        agent = BatchedReActAgent(profile, batch_size=4, seed=1)
        result = run_sim(jobs, agent)
        assert len(result.records) == 20
        result.verify_capacity()


class TestQuality:
    def test_schedule_quality_close_to_per_decision(self):
        """Batching trades staleness for calls; the schedule should stay
        in the same quality band as the per-decision agent."""
        jobs = generate_workload("heterogeneous_mix", 40, seed=5)
        single = compute_metrics(
            run_sim(jobs, create_llm_scheduler("claude-3.7-sim", seed=0))
        )
        batched = compute_metrics(
            run_sim(jobs, create_batched_llm_scheduler(batch_size=4, seed=0))
        )
        assert batched["makespan"] <= single["makespan"] * 1.15
        assert batched["node_utilization"] >= single["node_utilization"] * 0.85
