"""Latency-skew and disk-full (ENOSPC) injection + recovery (PR 8).

Latency rules are benign — they delay an attempt without replacing the
crash/hang decision, and *all* firing rules stack. ``disk_full`` rules
raise ``OSError(ENOSPC)`` before a single byte is written, and the
store's bounded append-retry recovers once the rule's attempt budget
is exhausted — the recovery contract pinned here.
"""

import errno
import time

import pytest

from repro.experiments import faultinject
from repro.experiments.faultinject import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    mangle_store_line,
    on_cell_attempt,
)
from repro.experiments.parallel import expand_cells, run_cells
from repro.experiments.runner import run_single
from repro.experiments.store import RunStore, StoredRun


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.install(None)
    yield
    faultinject.install(None)


class TestLatencyRules:
    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="latency", skew_s=-0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="slowdown")

    def test_all_matching_latency_rules_fire(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="latency", skew_s=0.01),
                FaultRule(kind="latency", skew_s=0.02, match="|sjf|"),
                FaultRule(kind="latency", skew_s=0.04, match="|fcfs|"),
            )
        )
        fired = plan.latency_rules("adversarial|8|sjf|0|0|scenario", 1)
        assert [r.skew_s for r in fired] == [0.01, 0.02]
        # Latency never masquerades as a crash/hang decision.
        assert plan.cell_rule("adversarial|8|sjf|0|0|scenario", 1) is None

    def test_latency_respects_attempt_budget(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="latency", skew_s=0.01, max_attempt=1),)
        )
        assert plan.latency_rules("cell", 1)
        assert plan.latency_rules("cell", 2) == []

    def test_on_cell_attempt_stacks_skews(self):
        faultinject.install(
            FaultPlan(
                rules=(
                    FaultRule(kind="latency", skew_s=0.05),
                    FaultRule(kind="latency", skew_s=0.05),
                )
            )
        )
        t0 = time.monotonic()
        on_cell_attempt("cell", 1)
        assert time.monotonic() - t0 >= 0.1

    def test_latency_does_not_shield_a_crash(self):
        faultinject.install(
            FaultPlan(
                rules=(
                    FaultRule(kind="latency", skew_s=0.05),
                    FaultRule(kind="crash"),
                )
            )
        )
        t0 = time.monotonic()
        with pytest.raises(InjectedCrash):
            on_cell_attempt("cell", 1)
        assert time.monotonic() - t0 >= 0.05

    def test_plan_round_trips_skew(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="latency", skew_s=0.25, match="x"),)
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sweep_results_identical_under_skew(self, tmp_path):
        # Skew reorders completions; it must never change what a cell
        # computes. Same two cells, with and without latency injection.
        cells = expand_cells(
            scenarios=["adversarial"],
            sizes=[8],
            schedulers=["fcfs", "sjf"],
            workload_seeds=[0],
            scheduler_seeds=[0],
        )
        clean = run_cells(cells, workers=1)
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="latency", skew_s=0.02),))
        )
        skewed = run_cells(cells, workers=1)
        assert [r.metrics for r in map(StoredRun.from_run, clean)] == [
            r.metrics for r in map(StoredRun.from_run, skewed)
        ]


class TestDiskFull:
    def test_mangle_raises_enospc_before_any_byte(self):
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="disk_full", max_attempt=99),))
        )
        with pytest.raises(OSError) as excinfo:
            mangle_store_line("cell", '{"x": 1}')
        assert excinfo.value.errno == errno.ENOSPC

    def test_attempt_counter_advances_so_transients_clear(self):
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="disk_full", max_attempt=1),))
        )
        with pytest.raises(OSError):
            mangle_store_line("cell", "line")
        # Second write attempt for the same cell: the rule no longer
        # fires, the line goes through untouched.
        assert mangle_store_line("cell", "line") == ("line", True)

    def test_store_append_recovers_from_transient_enospc(self, tmp_path):
        stored = StoredRun.from_run(run_single("adversarial", 8, "fcfs"))
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="disk_full", max_attempt=1),))
        )
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(stored)  # first write fails, bounded retry lands it
        assert [r.key for r in store.load()] == [stored.key]

    def test_persistent_enospc_surfaces_and_store_stays_loadable(
        self, tmp_path
    ):
        store = RunStore(tmp_path / "runs.jsonl")
        fcfs = StoredRun.from_run(run_single("adversarial", 8, "fcfs"))
        sjf = StoredRun.from_run(run_single("adversarial", 8, "sjf"))
        store.append(fcfs)
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="disk_full", max_attempt=10_000),))
        )
        with pytest.raises(OSError) as excinfo:
            store.append(sjf)
        assert excinfo.value.errno == errno.ENOSPC
        # A full disk loses the new line, never the archive.
        faultinject.install(None)
        assert [r.key for r in store.load()] == [fcfs.key]

    def test_retry_budget_is_bounded(self, tmp_path):
        # max_attempt beyond the append retry budget (1 + 3 attempts)
        # must raise rather than loop forever; one attempt past the
        # budget still fails, one within it recovers.
        stored = StoredRun.from_run(run_single("adversarial", 8, "fcfs"))
        budget = 1 + RunStore.APPEND_RETRIES
        faultinject.install(
            FaultPlan(rules=(FaultRule(kind="disk_full", max_attempt=budget),))
        )
        with pytest.raises(OSError):
            RunStore(tmp_path / "a.jsonl").append(stored)
        faultinject.install(
            FaultPlan(
                rules=(FaultRule(kind="disk_full", max_attempt=budget - 1),)
            )
        )
        store = RunStore(tmp_path / "b.jsonl")
        store.append(stored)
        assert len(store) == 1
