"""Tests for SWF trace interoperability."""

import io

import pytest

from repro.workloads.generator import generate_workload
from repro.workloads.swf import jobs_from_swf, jobs_to_swf


def round_trip(jobs):
    buf = io.StringIO()
    jobs_to_swf(jobs, buf)
    buf.seek(0)
    return jobs_from_swf(buf)


class TestRoundTrip:
    def test_core_fields_survive(self):
        jobs = generate_workload("heterogeneous_mix", 15, seed=2)
        back = round_trip(jobs)
        assert len(back) == 15
        for orig, new in zip(jobs, back):
            assert new.job_id == orig.job_id
            assert new.nodes == orig.nodes
            assert new.submit_time == pytest.approx(orig.submit_time, abs=0.01)
            assert new.duration == pytest.approx(orig.duration, abs=0.01)
            assert new.walltime == pytest.approx(orig.walltime, abs=0.01)
            assert new.memory_gb == pytest.approx(orig.memory_gb, rel=1e-4)
            assert new.user == orig.user

    def test_file_round_trip(self, tmp_path):
        jobs = generate_workload("bursty_idle", 10, seed=1)
        path = tmp_path / "trace.swf"
        jobs_to_swf(jobs, path, header="bursty test trace")
        text = path.read_text()
        assert text.startswith(";")
        assert "bursty test trace" in text
        assert len(jobs_from_swf(path)) == 10


class TestRobustParsing:
    def test_comments_and_blank_lines_skipped(self):
        text = (
            "; header comment\n"
            "\n"
            "1 0 -1 100 4 -1 -1 4 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        )
        jobs = jobs_from_swf(io.StringIO(text))
        assert len(jobs) == 1
        assert jobs[0].nodes == 4
        assert jobs[0].user == "user_3"

    def test_cancelled_jobs_filtered(self):
        text = (
            "1 0 -1 0 4 -1 -1 4 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"   # runtime 0
            "2 0 -1 -1 4 -1 -1 4 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"  # runtime -1
            "3 5 -1 50 2 -1 -1 2 100 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        )
        jobs = jobs_from_swf(io.StringIO(text))
        assert [j.job_id for j in jobs] == [3]

    def test_allocated_procs_fallback_to_requested(self):
        text = "1 0 -1 100 -1 -1 -1 16 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        jobs = jobs_from_swf(io.StringIO(text))
        assert jobs[0].nodes == 16

    def test_unknown_memory_defaults(self):
        text = "1 0 -1 100 4 -1 -1 4 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        jobs = jobs_from_swf(io.StringIO(text))
        assert jobs[0].memory_gb == 1.0

    def test_malformed_lines_skipped(self):
        text = (
            "garbage line\n"
            "1 0 -1 100 4 -1 -1 4 200 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        )
        assert len(jobs_from_swf(io.StringIO(text))) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no usable jobs"):
            jobs_from_swf(io.StringIO("; only a comment\n"))

    def test_negative_walltime_falls_back_to_runtime(self):
        text = "1 0 -1 100 4 -1 -1 4 -1 -1 -1 3 1 -1 -1 -1 -1 -1\n"
        jobs = jobs_from_swf(io.StringIO(text))
        assert jobs[0].walltime == 100.0
