"""Tests for the record/replay backend."""

import pytest

from repro.core.agent import ReActSchedulingAgent
from repro.core.backends import SimulatedReasoningBackend
from repro.core.profiles import CLAUDE_37_SIM
from repro.core.replay import (
    RecordingBackend,
    ReplayBackend,
    ReplayMismatch,
    load_replay,
)
from repro.workloads.generator import generate_workload

from tests.conftest import run_sim


def record_session(jobs, seed=0):
    recorder = RecordingBackend(SimulatedReasoningBackend(CLAUDE_37_SIM, seed=seed))
    agent = ReActSchedulingAgent(recorder)
    result = run_sim(jobs, agent, nodes=256, memory=2048.0)
    return recorder, result


class TestRecording:
    def test_tape_length_matches_calls(self):
        jobs = generate_workload("resource_sparse", 8, seed=1)
        recorder, result = record_session(jobs)
        assert len(recorder.tape) == len(result.extras["llm_calls"])

    def test_save_and_load(self, tmp_path):
        jobs = generate_workload("resource_sparse", 6, seed=1)
        recorder, _ = record_session(jobs)
        path = tmp_path / "tape.json"
        recorder.save(path)
        replay = load_replay(path)
        assert replay.name == "claude-3.7-sim"
        assert len(replay.calls) == len(recorder.tape)


class TestReplay:
    def test_replay_reproduces_schedule(self, tmp_path):
        jobs = generate_workload("heterogeneous_mix", 10, seed=4)
        recorder, original = record_session(jobs, seed=2)
        path = tmp_path / "tape.json"
        recorder.save(path)

        replay_agent = ReActSchedulingAgent(load_replay(path))
        replayed = run_sim(jobs, replay_agent, nodes=256, memory=2048.0)
        assert {r.job.job_id: r.start_time for r in original.records} == {
            r.job.job_id: r.start_time for r in replayed.records
        }
        # Virtual latencies replay exactly too.
        orig = [c.latency_s for c in original.extras["llm_calls"]]
        redo = [c.latency_s for c in replayed.extras["llm_calls"]]
        assert orig == redo

    def test_prompt_mismatch_detected(self):
        jobs_a = generate_workload("resource_sparse", 6, seed=1)
        jobs_b = generate_workload("resource_sparse", 6, seed=2)
        recorder, _ = record_session(jobs_a)
        replay_agent = ReActSchedulingAgent(
            ReplayBackend(recorder.tape, verify_prompts=True)
        )
        with pytest.raises(ReplayMismatch, match="prompt mismatch"):
            run_sim(jobs_b, replay_agent, nodes=256, memory=2048.0)

    def test_unverified_replay_ignores_prompts(self):
        jobs_a = generate_workload("resource_sparse", 6, seed=1)
        recorder, _ = record_session(jobs_a)
        backend = ReplayBackend(recorder.tape, verify_prompts=False)
        reply = backend.complete("any prompt", None)
        assert reply.text == recorder.tape[0].text

    def test_tape_exhaustion(self):
        backend = ReplayBackend([], verify_prompts=False)
        with pytest.raises(ReplayMismatch, match="exhausted"):
            backend.complete("p", None)

    def test_reset_rewinds_tape(self):
        jobs = generate_workload("resource_sparse", 5, seed=1)
        recorder, _ = record_session(jobs)
        backend = ReplayBackend(recorder.tape, verify_prompts=False)
        first = backend.complete("p", None)
        backend.reset()
        assert backend.complete("p", None).text == first.text
