"""Unit tests for ASCII report rendering."""

import math

from repro.analysis.stats import box_stats
from repro.experiments.report import (
    format_table,
    render_figure3,
    render_figure7,
    render_figure8,
    render_normalized_block,
    render_overhead_table,
)
from repro.experiments.runner import OverheadSummary
from repro.analysis.stats import summarize_latencies
from repro.metrics.objectives import METRIC_NAMES


def block(value=1.0):
    return {
        "fcfs": {m: 1.0 for m in METRIC_NAMES},
        "sjf": {m: value for m in METRIC_NAMES},
    }


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", "y"], ["z", "wwww"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert all(len(l) == len(lines[0]) for l in lines[1:2])

    def test_header_separator(self):
        text = format_table(["col"], [["val"]])
        assert "---" in text.splitlines()[1]


class TestNormalizedBlock:
    def test_contains_schedulers_and_title(self):
        text = render_normalized_block(block(0.5), "my title")
        assert "my title" in text
        assert "fcfs" in text
        assert "sjf" in text
        assert "0.500" in text

    def test_nan_rendered_as_dash(self):
        data = block()
        data["sjf"]["avg_wait_time"] = math.nan
        text = render_normalized_block(data, "t")
        assert "—" in text

    def test_inf_rendered(self):
        data = block()
        data["sjf"]["avg_wait_time"] = math.inf
        assert "inf" in render_normalized_block(data, "t")


class TestFigureRenderers:
    def test_figure3(self):
        text = render_figure3({"adversarial": block(), "bursty_idle": block()})
        assert "adversarial" in text
        assert "bursty_idle" in text

    def test_figure7(self):
        data = {"fcfs": {m: box_stats([1.0, 1.0, 1.0]) for m in METRIC_NAMES}}
        text = render_figure7(data)
        assert "median" in text
        assert "fcfs" in text

    def test_figure8(self):
        assert "Polaris" in render_figure8(block())

    def test_overhead_table(self):
        ov = OverheadSummary(
            model="claude-3.7-sim",
            elapsed_s=100.0,
            n_calls=20,
            n_accepted_placements=15,
            n_rejected=1,
            latency=summarize_latencies([5.0] * 15),
            all_call_latencies=tuple([5.0] * 20),
        )
        text = render_overhead_table(
            {"scenario_x": {"claude-3.7-sim": ov}},
            key_label="scenario",
            title="test",
        )
        assert "scenario_x" in text
        assert "100.0" in text
        assert "claude-3.7-sim" in text
