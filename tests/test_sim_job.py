"""Unit tests for the job model."""

import pytest

from repro.sim.job import Job, JobState, screen_unschedulable, validate_workload

from tests.conftest import make_job


class TestJobConstruction:
    def test_minimal_job(self):
        job = Job(job_id=1, submit_time=0.0, duration=10.0, nodes=2, memory_gb=4.0)
        assert job.job_id == 1
        assert job.nodes == 2

    def test_walltime_defaults_to_duration(self):
        job = Job(job_id=1, submit_time=0.0, duration=42.0, nodes=1, memory_gb=1.0)
        assert job.walltime == 42.0

    def test_explicit_walltime_kept(self):
        job = make_job(duration=50.0, walltime=100.0)
        assert job.walltime == 100.0

    def test_negative_job_id_rejected(self):
        with pytest.raises(ValueError, match="job_id"):
            Job(job_id=-1, submit_time=0.0, duration=1.0, nodes=1, memory_gb=1.0)

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError, match="submit_time"):
            Job(job_id=1, submit_time=-1.0, duration=1.0, nodes=1, memory_gb=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Job(job_id=1, submit_time=0.0, duration=0.0, nodes=1, memory_gb=1.0)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            Job(job_id=1, submit_time=0.0, duration=1.0, nodes=0, memory_gb=1.0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError, match="memory"):
            Job(job_id=1, submit_time=0.0, duration=1.0, nodes=1, memory_gb=-2.0)

    def test_jobs_are_immutable(self):
        job = make_job()
        with pytest.raises(AttributeError):
            job.nodes = 4  # type: ignore[misc]


class TestJobDerived:
    def test_node_seconds(self):
        assert make_job(duration=100.0, nodes=4).node_seconds == 400.0

    def test_memory_gb_seconds(self):
        assert make_job(duration=10.0, memory=3.0).memory_gb_seconds == 30.0

    def test_with_submit_time_returns_copy(self):
        job = make_job(submit=0.0)
        moved = job.with_submit_time(50.0)
        assert moved.submit_time == 50.0
        assert job.submit_time == 0.0
        assert moved.job_id == job.job_id

    def test_scaled_scales_duration_and_walltime(self):
        job = make_job(duration=100.0, walltime=200.0)
        scaled = job.scaled(duration_factor=2.0)
        assert scaled.duration == 200.0
        assert scaled.walltime == 400.0

    def test_describe_mentions_resources(self):
        text = make_job(job_id=7, nodes=16, memory=32.0).describe()
        assert "Job 7" in text
        assert "16 nodes" in text
        assert "32 GB" in text


class TestWorkloadValidation:
    def test_sorted_by_submit_then_id(self):
        jobs = [
            make_job(3, submit=5.0),
            make_job(1, submit=0.0),
            make_job(2, submit=0.0),
        ]
        ordered = validate_workload(jobs)
        assert [j.job_id for j in ordered] == [1, 2, 3]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job_id"):
            validate_workload([make_job(1), make_job(1)])

    def test_empty_workload_ok(self):
        assert validate_workload([]) == []


class TestScreenUnschedulable:
    def test_splits_by_capacity(self):
        fits = make_job(1, nodes=4, memory=16.0)
        too_many_nodes = make_job(2, nodes=500, memory=1.0)
        too_much_memory = make_job(3, nodes=1, memory=5000.0)
        ok, bad = screen_unschedulable(
            [fits, too_many_nodes, too_much_memory], 256, 2048.0
        )
        assert [j.job_id for j in ok] == [1]
        assert sorted(j.job_id for j in bad) == [2, 3]

    def test_all_fit(self):
        ok, bad = screen_unschedulable([make_job(1)], 256, 2048.0)
        assert len(ok) == 1 and not bad


class TestJobState:
    def test_states_exist(self):
        assert {s.value for s in JobState} == {
            "pending", "queued", "running", "completed",
        }
