"""Session engine: streaming arrivals, byte-identity, memoization.

The serving invariant (ISSUE 8): for the jobs known at query time, a
session's served schedule is **byte-identical** to batch
``run_single`` over those jobs — records, decisions, preemptions, and
metric floats all hash equal at full precision. These tests stream the
exact workloads the batch reference generates, in chunks, and compare
SHA-256 digests.
"""

import pytest

from repro.experiments.runner import run_single
from repro.service.protocol import schedule_digest
from repro.service.session import Session, SessionConfig, SessionError
from repro.sim.job import Job
from repro.workloads.generator import generate_workload


def stream_session(
    jobs, scheduler: str, scheduler_seed: int, chunk: int
) -> Session:
    session = Session(
        "t", SessionConfig(scheduler=scheduler, scheduler_seed=scheduler_seed)
    )
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    for i in range(0, len(ordered), chunk):
        session.append_jobs(ordered[i:i + chunk])
    return session


def session_digest(session: Session) -> str:
    result, metrics = session.ensure_result()
    return schedule_digest(result, metrics)


def batch_digest(scenario, n, scheduler, wseed, sseed) -> str:
    run = run_single(
        scenario,
        n,
        scheduler,
        workload_seed=wseed,
        scheduler_seed=sseed,
    )
    return schedule_digest(run.result, run.metrics.as_dict())


class TestByteIdentity:
    @pytest.mark.parametrize(
        "scheduler,sseed",
        [
            ("fcfs", 0),
            ("fcfs_backfill", 0),
            ("sjf", 0),
            ("largest_first", 0),
            ("random", 3),
        ],
    )
    def test_streamed_session_equals_batch(self, scheduler, sseed):
        scenario, n, wseed = "heterogeneous_mix", 40, 2
        jobs = generate_workload(scenario, n, seed=wseed)
        session = stream_session(jobs, scheduler, sseed, chunk=7)
        assert session_digest(session) == batch_digest(
            scenario, n, scheduler, wseed, sseed
        )

    def test_chunk_size_is_irrelevant(self):
        jobs = generate_workload("adversarial", 30, seed=1)
        digests = {
            session_digest(stream_session(jobs, "sjf", 0, chunk))
            for chunk in (1, 4, 30)
        }
        assert len(digests) == 1

    def test_growing_session_tracks_growing_batch(self):
        # After every appended chunk the session must equal the batch
        # reference over the jobs known so far — the streaming contract
        # is not just a statement about the final state.
        jobs = sorted(
            generate_workload("bursty_idle", 24, seed=4),
            key=lambda j: (j.submit_time, j.job_id),
        )
        session = Session("t", SessionConfig(scheduler="fcfs"))
        for i in range(0, len(jobs), 8):
            session.append_jobs(jobs[i:i + 8])
            batch = run_single(
                "bursty_idle", 24, "fcfs", jobs=jobs[: i + 8]
            )
            assert session_digest(session) == schedule_digest(
                batch.result, batch.metrics.as_dict()
            )


class TestMemoization:
    def test_one_simulation_per_generation(self):
        jobs = generate_workload("homogeneous_short", 12, seed=0)
        session = stream_session(jobs, "fcfs", 0, chunk=12)
        d1 = session_digest(session)
        d2 = session_digest(session)
        d3 = session_digest(session)
        assert d1 == d2 == d3
        assert session.n_runs == 1
        assert session.n_result_reuses == 2

    def test_append_invalidates_memo(self):
        jobs = sorted(
            generate_workload("homogeneous_short", 12, seed=0),
            key=lambda j: (j.submit_time, j.job_id),
        )
        session = Session("t", SessionConfig(scheduler="fcfs"))
        session.append_jobs(jobs[:6])
        session.ensure_result()
        session.append_jobs(jobs[6:])
        session.ensure_result()
        assert session.generation == 2
        assert session.n_runs == 2

    def test_stats_shape(self):
        jobs = generate_workload("homogeneous_short", 8, seed=0)
        session = stream_session(jobs, "fcfs", 0, chunk=8)
        session.ensure_result()
        assert session.stats() == {
            "n_jobs": 8,
            "generation": 1,
            "n_runs": 1,
            "n_result_reuses": 0,
        }


class TestStreamingContract:
    def job(self, job_id, submit):
        return Job(
            job_id=job_id,
            submit_time=submit,
            duration=10.0,
            nodes=1,
            memory_gb=4.0,
        )

    def test_empty_batch_rejected(self):
        session = Session("t")
        with pytest.raises(SessionError, match="at least one job"):
            session.append_jobs([])

    def test_out_of_order_batch_rejected(self):
        session = Session("t")
        with pytest.raises(SessionError, match="strictly newer"):
            session.append_jobs([self.job(1, 5.0), self.job(2, 3.0)])

    def test_stale_arrival_rejected_across_batches(self):
        session = Session("t")
        session.append_jobs([self.job(1, 5.0)])
        with pytest.raises(SessionError, match="strictly newer"):
            session.append_jobs([self.job(2, 4.0)])

    def test_tied_time_requires_increasing_ids(self):
        session = Session("t")
        session.append_jobs([self.job(5, 1.0)])
        with pytest.raises(SessionError, match="strictly newer"):
            session.append_jobs([self.job(3, 1.0)])
        session.append_jobs([self.job(6, 1.0)])
        assert session.n_jobs == 2

    def test_duplicate_job_id_rejected(self):
        session = Session("t")
        session.append_jobs([self.job(1, 1.0)])
        with pytest.raises(SessionError, match="duplicate job id"):
            session.append_jobs([self.job(1, 2.0)])

    def test_rejected_batch_changes_nothing(self):
        session = Session("t")
        session.append_jobs([self.job(1, 1.0)])
        generation = session.generation
        with pytest.raises(SessionError):
            # First job of the batch is valid; the second is not. The
            # whole batch must be rolled back (never applied).
            session.append_jobs([self.job(2, 2.0), self.job(3, 0.5)])
        assert session.n_jobs == 1
        assert session.generation == generation
        session.append_jobs([self.job(2, 2.0)])
        assert session.n_jobs == 2

    def test_query_before_any_jobs_rejected(self):
        session = Session("t")
        with pytest.raises(SessionError, match="no jobs"):
            session.ensure_result()


class TestIsolation:
    def test_sessions_do_not_share_state(self):
        # Two sessions over the same workload but different schedulers
        # must each equal their own batch reference — running them
        # interleaved is the in-process version of the server's
        # session-isolation guarantee.
        jobs = sorted(
            generate_workload("heterogeneous_mix", 30, seed=7),
            key=lambda j: (j.submit_time, j.job_id),
        )
        a = Session("a", SessionConfig(scheduler="fcfs"))
        b = Session("b", SessionConfig(scheduler="sjf"))
        for i in range(0, len(jobs), 10):
            a.append_jobs(jobs[i:i + 10])
            b.append_jobs(jobs[i:i + 10])
            a.ensure_result()
            b.ensure_result()
        assert session_digest(a) == batch_digest(
            "heterogeneous_mix", 30, "fcfs", 7, 0
        )
        assert session_digest(b) == batch_digest(
            "heterogeneous_mix", 30, "sjf", 7, 0
        )
