"""Unit tests for natural-language feedback rendering."""


from repro.core.constraints import render_feedback, render_parse_feedback
from repro.core.grammar import ActionParseError
from repro.sim.actions import StartJob, Stop
from repro.sim.constraints import Violation, ViolationKind
from repro.sim.simulator import SystemView

from tests.conftest import make_job


def view_with_queue(jobs, free_nodes=2, free_mem=576.0):
    return SystemView(
        now=1554.0,
        queued=tuple(jobs),
        running=(),
        completed_ids=(),
        free_nodes=free_nodes,
        free_memory_gb=free_mem,
        total_nodes=256,
        total_memory_gb=2048.0,
        pending_arrivals=0,
        next_arrival_time=None,
        next_completion_time=None,
    )


class TestResourceFeedback:
    def test_fig2_style_message(self):
        """Matches the paper's Fig. 2 feedback format."""
        job = make_job(32, nodes=256, memory=8.0)
        view = view_with_queue([job], free_nodes=238, free_mem=576.0)
        violations = (
            Violation(ViolationKind.INSUFFICIENT_NODES, 32, "..."),
        )
        text = render_feedback(StartJob(32), violations, view)
        assert text == (
            "Job 32 cannot be started — requires 256 Nodes, 8 GB; "
            "available: 238 Nodes, 576 GB."
        )

    def test_memory_violation_same_shape(self):
        job = make_job(5, nodes=1, memory=1024.0)
        view = view_with_queue([job], free_nodes=100, free_mem=512.0)
        violations = (
            Violation(ViolationKind.INSUFFICIENT_MEMORY, 5, "..."),
        )
        text = render_feedback(StartJob(5), violations, view)
        assert "Job 5 cannot be started" in text
        assert "1024 GB" in text


class TestOtherFeedback:
    def test_capacity_exceeded(self):
        view = view_with_queue([make_job(9, nodes=300)])
        violations = (
            Violation(
                ViolationKind.EXCEEDS_CAPACITY, 9,
                "requires 300 nodes / 1 GB; cluster capacity is 256 nodes / 2048 GB",
            ),
        )
        text = render_feedback(StartJob(9), violations, view)
        assert "can never run" in text

    def test_not_queued(self):
        view = view_with_queue([])
        violations = (Violation(ViolationKind.NOT_QUEUED, 77, "gone"),)
        text = render_feedback(StartJob(77), violations, view)
        assert "Job 77 is not in the waiting queue" in text

    def test_premature_stop(self):
        view = view_with_queue([make_job(1)])
        violations = (Violation(ViolationKind.PREMATURE_STOP, detail="jobs remain"),)
        text = render_feedback(Stop, violations, view)
        assert "Stop rejected" in text
        assert "continue scheduling" in text

    def test_no_violations_empty_feedback(self):
        view = view_with_queue([])
        assert render_feedback(StartJob(1), (), view) == ""

    def test_generic_fallback(self):
        view = view_with_queue([])
        violations = (
            Violation(ViolationKind.NOT_YET_SUBMITTED, 4, "arrives later"),
        )
        text = render_feedback(StartJob(4), violations, view)
        assert "arrives later" in text


class TestParseFeedback:
    def test_mentions_format(self):
        text = render_parse_feedback(ActionParseError("bad action"))
        assert "could not be parsed" in text
        assert "StartJob(job_id=X)" in text
