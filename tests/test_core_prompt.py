"""Unit tests for prompt construction."""


from repro.core.prompt import PromptBuilder, estimate_tokens
from repro.core.scratchpad import Scratchpad
from repro.sim.simulator import RunningJob, SystemView

from tests.conftest import make_job


def view_with(**overrides):
    defaults = dict(
        now=0.0,
        queued=(),
        running=(),
        completed_ids=(),
        free_nodes=256,
        free_memory_gb=2048.0,
        total_nodes=256,
        total_memory_gb=2048.0,
        pending_arrivals=0,
        next_arrival_time=None,
        next_completion_time=None,
    )
    defaults.update(overrides)
    return SystemView(**defaults)


class TestPromptStructure:
    def test_empty_state_prompt(self):
        ctx = PromptBuilder().build(view_with(), Scratchpad())
        text = ctx.prompt_text
        assert "expert HPC resource manager" in text
        assert "System capacity: 256 nodes, 2048 GB memory" in text
        assert "Current time: 0" in text
        assert "Available Nodes: 256" in text
        assert "Available Memory: 2048 GB" in text
        assert "Running Jobs:\nNone" in text
        assert "Completed Jobs:\nNone" in text
        assert "Waiting Jobs (eligible to schedule):\nNone" in text
        assert "(nothing yet)" in text

    def test_objectives_block_present(self):
        text = PromptBuilder().build(view_with(), Scratchpad()).prompt_text
        assert "Fairness: Minimize variance in user wait times" in text
        assert "Do not exceed 256 Nodes or 2048 GB memory" in text
        assert "Trade-offs are allowed" in text

    def test_output_format_block(self):
        text = PromptBuilder().build(view_with(), Scratchpad()).prompt_text
        assert "StartJob(job_id=X)" in text
        assert "BackfillJob(job_id=Y)" in text
        assert "Thought: <your reasoning>" in text
        assert "Action: <your action>" in text

    def test_queued_jobs_listed_with_wait(self):
        job = make_job(7, submit=0.0, nodes=16, memory=32.0, user="user_3")
        ctx = PromptBuilder().build(
            view_with(now=50.0, queued=(job,)), Scratchpad()
        )
        assert "Job 7: 16 nodes, 32 GB" in ctx.prompt_text
        assert "user=user_3" in ctx.prompt_text
        assert "waiting=50s" in ctx.prompt_text

    def test_running_jobs_listed(self):
        run = RunningJob(make_job(3, nodes=8, memory=16.0), 5.0)
        ctx = PromptBuilder().build(view_with(running=(run,)), Scratchpad())
        assert "Job 3: 8 nodes, 16 GB, started t=5" in ctx.prompt_text

    def test_completed_ids_listed(self):
        ctx = PromptBuilder().build(
            view_with(completed_ids=(1, 2, 3)), Scratchpad()
        )
        assert "- 1, 2, 3" in ctx.prompt_text

    def test_scratchpad_embedded(self):
        pad = Scratchpad()
        pad.append(1.0, "my earlier reasoning", "Delay")
        ctx = PromptBuilder().build(view_with(), pad)
        assert "# Scratchpad (Decision History)" in ctx.prompt_text
        assert "my earlier reasoning" in ctx.prompt_text

    def test_capacity_parameterized(self):
        view = view_with(
            total_nodes=560,
            total_memory_gb=560 * 512.0,
            free_nodes=560,
            free_memory_gb=560 * 512.0,
        )
        text = PromptBuilder().build(view, Scratchpad()).prompt_text
        assert "System capacity: 560 nodes" in text
        assert "Do not exceed 560 Nodes" in text

    def test_context_carries_view(self):
        view = view_with(now=12.5)
        ctx = PromptBuilder().build(view, Scratchpad())
        assert ctx.view is view
        assert ctx.now == 12.5


class TestTokenEstimate:
    def test_minimum_one(self):
        assert estimate_tokens("") == 1

    def test_scales_with_length(self):
        assert estimate_tokens("x" * 400) == 100
