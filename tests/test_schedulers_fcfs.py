"""Unit tests for FCFS and EASY backfilling."""

import pytest

from repro.schedulers.fcfs import (
    EasyBackfillScheduler,
    FCFSScheduler,
    head_reservation,
)
from repro.sim.actions import ActionKind

from tests.conftest import make_job, run_sim


class TestStrictFCFS:
    def test_arrival_order_preserved(self):
        jobs = [
            make_job(1, submit=0.0, duration=10.0, nodes=8),
            make_job(2, submit=1.0, duration=1.0, nodes=1),
            make_job(3, submit=2.0, duration=1.0, nodes=1),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        # Strict FCFS: 2 and 3 wait behind 1 even though they'd fit... they
        # don't fit (job 1 holds all 8 nodes), but the point is ordering.
        assert starts[1] == 0.0
        assert starts[2] == 10.0
        assert starts[3] == 10.0

    def test_head_blocking_wastes_resources(self):
        # Head job 2 needs the full cluster; small job 3 fits now but
        # strict FCFS will not jump the queue — the convoy effect the
        # paper's Adversarial scenario targets.
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=4),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
            make_job(3, submit=2.0, duration=5.0, nodes=1),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[2] == 100.0
        assert starts[3] == 110.0  # waited behind the blocked head

    def test_no_queue_delays(self):
        jobs = [make_job(1, submit=5.0, duration=1.0)]
        result = run_sim(jobs, FCFSScheduler())
        assert result.record_for(1).start_time == 5.0


class TestHeadReservation:
    def test_reservation_accumulates_releases(self):
        from repro.sim.simulator import RunningJob, SystemView

        head = make_job(10, nodes=6, memory=8.0)
        running = (
            RunningJob(make_job(1, nodes=4, duration=50.0), 0.0),
            RunningJob(make_job(2, nodes=2, duration=20.0), 0.0),
        )
        view = SystemView(
            now=10.0, queued=(head,), running=running, completed_ids=(),
            free_nodes=2, free_memory_gb=48.0, total_nodes=8,
            total_memory_gb=64.0, pending_arrivals=0,
            next_arrival_time=None, next_completion_time=20.0,
        )
        shadow, extra_nodes, extra_mem = head_reservation(head, running, view)
        # Job 2 releases 2 nodes at t=20 (4 free, not enough); job 1
        # releases 4 more at t=50 → 8 free ≥ 6 → shadow = 50.
        assert shadow == 50.0
        assert extra_nodes == 2
        assert extra_mem == pytest.approx(64.0 - 8.0)


class TestEasyBackfill:
    def test_backfills_short_job_behind_blocked_head(self):
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=6),
            make_job(2, submit=1.0, duration=50.0, nodes=8),   # blocked head
            make_job(3, submit=2.0, duration=10.0, nodes=2),   # backfillable
        ]
        result = run_sim(jobs, EasyBackfillScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[3] == 2.0       # ran ahead of the head
        assert starts[2] == 100.0     # head not delayed

    def test_never_delays_head_reservation(self):
        # Candidate job 3 fits now but its walltime (200) would run past
        # the head's shadow time (100) while using nodes the head needs.
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=6),
            make_job(2, submit=1.0, duration=50.0, nodes=8),
            make_job(3, submit=2.0, duration=200.0, nodes=2),
        ]
        result = run_sim(jobs, EasyBackfillScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[2] == 100.0     # head reservation held
        assert starts[3] >= 100.0     # candidate was *not* backfilled early

    def test_backfills_into_reservation_extras(self):
        # Head needs 6 of 8 nodes at its shadow time; a long 1-node job
        # fits into the 2-node extra indefinitely.
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=6),
            make_job(2, submit=1.0, duration=50.0, nodes=6),
            make_job(3, submit=2.0, duration=500.0, nodes=2),
        ]
        result = run_sim(jobs, EasyBackfillScheduler(), nodes=8, memory=64.0)
        starts = {r.job.job_id: r.start_time for r in result.records}
        assert starts[3] == 2.0
        assert starts[2] == 100.0

    def test_backfill_decisions_tagged(self):
        jobs = [
            make_job(1, submit=0.0, duration=100.0, nodes=6),
            make_job(2, submit=1.0, duration=50.0, nodes=8),
            make_job(3, submit=2.0, duration=10.0, nodes=2),
        ]
        result = run_sim(jobs, EasyBackfillScheduler(), nodes=8, memory=64.0)
        kinds = [d.action.kind for d in result.accepted_placements]
        assert ActionKind.BACKFILL in kinds

    def test_equals_fcfs_without_contention(self):
        jobs = [make_job(i, submit=float(i), duration=5.0, nodes=1) for i in range(1, 6)]
        a = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        b = run_sim(jobs, EasyBackfillScheduler(), nodes=8, memory=64.0)
        sa = {r.job.job_id: r.start_time for r in a.records}
        sb = {r.job.job_id: r.start_time for r in b.records}
        assert sa == sb
