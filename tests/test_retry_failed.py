"""``repro-sched matrix --retry-failed``: re-run quarantined cells.

Uses the deterministic fault injector (programmatic ``install``) to
quarantine a cell, then drives the real CLI entry point both ways:
fault cleared (the cell recovers, lands in the store, and the sidecar
is pruned away) and fault persisting (exit 3, sidecar compacted).
Recovery is checked for *identity*, not just presence: the recovered
store equals a store produced by a clean sweep, cell for cell.
"""

import json

import pytest

from repro.experiments import faultinject
from repro.experiments.cli import main
from repro.experiments.faultinject import FaultPlan, FaultRule
from repro.experiments.store import (
    FailedCell,
    FailureSidecar,
    RunStore,
    cell_key,
)


@pytest.fixture(autouse=True)
def clean_faults():
    faultinject.install(None)
    yield
    faultinject.install(None)


def sweep_args(store, max_retries=0):
    # Two tiny cells; the injected crash matches only the sjf one.
    return [
        "matrix",
        "--scenarios",
        "adversarial",
        "--sizes",
        "8",
        "--schedulers",
        "fcfs",
        "sjf",
        "--workers",
        "1",
        "--out",
        str(store),
        "--max-retries",
        str(max_retries),
        "--on-cell-failure",
        "quarantine",
    ]


SJF_CRASH = FaultPlan(
    seed=0,
    rules=(FaultRule(kind="crash", match="|sjf|", max_attempt=99),),
)


def metrics_by_key(store_path):
    return {run.key: run.metrics for run in RunStore(store_path).load()}


class TestRetryFailedRecovers:
    def test_recovered_store_equals_clean_sweep(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        reference = tmp_path / "reference.jsonl"
        # Clean reference sweep.
        assert main(sweep_args(reference)) == 0
        # Faulted sweep: the sjf cell exhausts its retries and is
        # quarantined; the fcfs cell completes.
        faultinject.install(SJF_CRASH)
        assert main(sweep_args(store)) == 3
        sidecar = FailureSidecar(store.with_name(store.name + ".failures"))
        records = sidecar.load()
        assert [r.key[2] for r in records] == ["sjf"]
        assert records[0].config is not None
        # Fault cleared: retry exactly the quarantined cell.
        faultinject.install(None)
        capsys.readouterr()
        rc = main(["matrix", "--retry-failed", str(store), "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered 1/1" in out
        assert not sidecar.path.exists()
        assert metrics_by_key(store) == metrics_by_key(reference)

    def test_still_failing_cell_keeps_compacted_sidecar(
        self, tmp_path, capsys
    ):
        store = tmp_path / "runs.jsonl"
        faultinject.install(SJF_CRASH)
        assert main(sweep_args(store)) == 3
        # Two failed attempts on record for the same cell (retry once
        # more while the fault is still active).
        rc = main(
            [
                "matrix",
                "--retry-failed",
                str(store),
                "--workers",
                "1",
                "--max-retries",
                "0",
            ]
        )
        assert rc == 3
        sidecar_path = store.with_name(store.name + ".failures")
        lines = [
            line
            for line in sidecar_path.read_text().splitlines()
            if line.strip()
        ]
        # Compacted: one record per still-failing cell, last attempt
        # wins — not an ever-growing append log.
        assert len(lines) == 1
        failed = FailedCell.from_json(lines[0])
        assert failed.key[2] == "sjf"
        assert failed.config is not None


class TestRetryFailedEdgeCases:
    def test_nothing_to_retry_is_success(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        assert main(sweep_args(store)) == 0
        rc = main(["matrix", "--retry-failed", str(store)])
        assert rc == 0
        assert "nothing to retry" in capsys.readouterr().out

    def test_conflicting_matrix_args_rejected(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        rc = main(
            [
                "matrix",
                "--retry-failed",
                str(store),
                "--scenarios",
                "adversarial",
            ]
        )
        assert rc == 2

    def test_matrix_without_scenarios_or_sizes_rejected(self, capsys):
        assert main(["matrix", "--sizes", "8"]) == 2
        assert main(["matrix", "--scenarios", "adversarial"]) == 2

    def test_v1_sidecar_records_cannot_be_retried(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        store.write_text("")
        sidecar = FailureSidecar(store.with_name(store.name + ".failures"))
        sidecar.append(
            FailedCell(
                key=cell_key(
                    "adversarial", 8, "sjf", 0, 0, "scenario", None, None
                ),
                kind="exception",
                error_type="RuntimeError",
                message="legacy",
                traceback_tail="",
                attempts=1,
                config=None,
                schema_version=1,
            )
        )
        rc = main(["matrix", "--retry-failed", str(store)])
        assert rc == 2
        err = capsys.readouterr()
        assert "schema" in (err.out + err.err).lower()

    def test_unreadable_sidecar_rejected(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        store.write_text("")
        sidecar_path = store.with_name(store.name + ".failures")
        sidecar_path.write_text("{not json\n")
        assert main(["matrix", "--retry-failed", str(store)]) == 2

    def test_duplicate_sidecar_records_retry_once(self, tmp_path, capsys):
        store = tmp_path / "runs.jsonl"
        faultinject.install(SJF_CRASH)
        assert main(sweep_args(store)) == 3
        sidecar_path = store.with_name(store.name + ".failures")
        # Simulate an older retry loop that appended a second record
        # for the same cell instead of compacting.
        line = sidecar_path.read_text()
        record = json.loads(line)
        record["attempts"] += 1
        sidecar_path.write_text(line + json.dumps(record) + "\n")
        faultinject.install(None)
        capsys.readouterr()
        rc = main(["matrix", "--retry-failed", str(store), "--workers", "1"])
        assert rc == 0
        assert "recovered 1/1" in capsys.readouterr().out
        assert not sidecar_path.exists()
