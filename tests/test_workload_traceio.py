"""Unit tests for trace CSV I/O."""

import io

import pytest

from repro.workloads.generator import generate_workload
from repro.workloads.traceio import (
    jobs_from_csv,
    jobs_from_csv_string,
    jobs_to_csv,
    jobs_to_csv_string,
)


class TestRoundTrip:
    def test_string_round_trip_exact(self):
        jobs = generate_workload("heterogeneous_mix", 20, seed=3)
        text = jobs_to_csv_string(jobs)
        back = jobs_from_csv_string(text)
        assert back == jobs

    def test_file_round_trip(self, tmp_path):
        jobs = generate_workload("bursty_idle", 15, seed=1)
        path = tmp_path / "trace.csv"
        jobs_to_csv(jobs, path)
        assert jobs_from_csv(path) == jobs

    def test_handle_round_trip(self):
        jobs = generate_workload("adversarial", 5, seed=0)
        buf = io.StringIO()
        jobs_to_csv(jobs, buf)
        buf.seek(0)
        assert jobs_from_csv(buf) == jobs

    def test_empty_workload(self):
        assert jobs_from_csv_string(jobs_to_csv_string([])) == []


class TestErrors:
    def test_missing_column(self):
        with pytest.raises(ValueError, match="missing columns"):
            jobs_from_csv_string("job_id,submit_time\n1,0\n")

    def test_malformed_row(self):
        jobs = generate_workload("adversarial", 2, seed=0)
        text = jobs_to_csv_string(jobs)
        bad = text.replace("60.0", "sixty", 1)
        with pytest.raises(ValueError, match="malformed trace row"):
            jobs_from_csv_string(bad)

    def test_empty_file(self):
        with pytest.raises(ValueError, match="empty trace file"):
            jobs_from_csv_string("")

    def test_header_only_is_empty_workload(self):
        jobs = jobs_from_csv_string(jobs_to_csv_string([]))
        assert jobs == []
