"""Unit tests for the ReAct text grammar."""

import pytest

from repro.core.grammar import (
    ActionParseError,
    action_tag,
    parse_action,
    parse_reply,
    render_reply,
)
from repro.sim.actions import BackfillJob, Delay, StartJob, Stop


class TestParseAction:
    def test_canonical_start(self):
        assert parse_action("StartJob(job_id=9)") == StartJob(9)

    def test_canonical_backfill(self):
        assert parse_action("BackfillJob(job_id=40)") == BackfillJob(40)

    def test_delay(self):
        assert parse_action("Delay") == Delay

    def test_stop(self):
        assert parse_action("Stop") == Stop

    def test_case_insensitive(self):
        assert parse_action("startjob(JOB_ID=3)") == StartJob(3)
        assert parse_action("DELAY") == Delay

    def test_bare_integer_argument(self):
        assert parse_action("StartJob(7)") == StartJob(7)

    def test_jobid_without_underscore(self):
        assert parse_action("StartJob(jobid=5)") == StartJob(5)

    def test_whitespace_tolerated(self):
        assert parse_action("  StartJob ( job_id = 12 )  ") == StartJob(12)

    def test_delay_with_parens_or_period(self):
        assert parse_action("Delay()") == Delay
        assert parse_action("Delay.") == Delay

    def test_garbage_rejected(self):
        with pytest.raises(ActionParseError, match="unrecognized action"):
            parse_action("LaunchRocket(job_id=1)")

    def test_missing_id_rejected(self):
        with pytest.raises(ActionParseError):
            parse_action("StartJob()")


class TestParseReply:
    def test_canonical_reply(self):
        reply = parse_reply("Thought: pick the short job\nAction: StartJob(job_id=9)")
        assert reply.thought == "pick the short job"
        assert reply.action == StartJob(9)

    def test_multiline_thought(self):
        text = (
            "Thought: line one\nline two\nline three\n"
            "Action: Delay"
        )
        reply = parse_reply(text)
        assert reply.thought == "line one\nline two\nline three"
        assert reply.action == Delay

    def test_last_action_line_wins(self):
        text = (
            "Thought: I considered Action: StartJob(job_id=1)\n"
            "Action: StartJob(job_id=1)\n"
            "Hmm, actually...\n"
            "Action: Delay"
        )
        assert parse_reply(text).action == Delay

    def test_reply_without_thought_marker(self):
        reply = parse_reply("just some musings\nAction: Stop")
        assert reply.action == Stop
        assert "musings" in reply.thought

    def test_no_action_line_raises(self):
        with pytest.raises(ActionParseError, match="no 'Action:'"):
            parse_reply("Thought: hmm, tough one")

    def test_malformed_action_raises(self):
        with pytest.raises(ActionParseError):
            parse_reply("Thought: x\nAction: DoTheThing")


class TestRenderRoundTrip:
    @pytest.mark.parametrize(
        "action",
        [StartJob(1), BackfillJob(22), Delay, Stop],
    )
    def test_round_trip(self, action):
        text = render_reply("some reasoning", action)
        parsed = parse_reply(text)
        assert parsed.action == action
        assert parsed.thought == "some reasoning"


class TestActionTag:
    def test_tags(self):
        assert action_tag(StartJob(1)) == "start_job"
        assert action_tag(BackfillJob(1)) == "backfill_job"
        assert action_tag(Delay) == "delay"
        assert action_tag(Stop) == "stop"
