"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cluster import ResourcePool
from repro.sim.job import Job
from repro.sim.simulator import HPCSimulator


def make_job(
    job_id: int = 1,
    *,
    submit: float = 0.0,
    duration: float = 100.0,
    nodes: int = 2,
    memory: float = 8.0,
    user: str = "user_0",
    walltime: float | None = None,
) -> Job:
    """Compact job factory for hand-crafted scheduling scenarios."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        duration=duration,
        nodes=nodes,
        memory_gb=memory,
        user=user,
        walltime=duration if walltime is None else walltime,
    )


def run_sim(jobs, scheduler, *, nodes: int = 256, memory: float = 2048.0):
    """Run a simulation on a fresh default cluster and verify capacity."""
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=scheduler,
        cluster=ResourcePool(total_nodes=nodes, total_memory_gb=memory),
    )
    result = sim.run()
    result.verify_capacity()
    return result


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster() -> ResourcePool:
    """A 8-node / 64 GB partition where contention is easy to craft."""
    return ResourcePool(total_nodes=8, total_memory_gb=64.0)


@pytest.fixture
def paper_cluster() -> ResourcePool:
    """The paper's 256-node / 2048 GB partition."""
    return ResourcePool(total_nodes=256, total_memory_gb=2048.0)
