"""Tests for the energy accounting extension."""

import pytest

from repro.metrics.energy import PowerModel, compare_energy, energy_report
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.optimizer import AnnealingOptimizer
from repro.sim.schedule import JobRecord, ScheduleResult
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


class TestPowerModel:
    def test_defaults_valid(self):
        PowerModel()

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=-1.0)

    def test_active_below_idle_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=200.0, active_watts=100.0)


class TestEnergyReport:
    def test_hand_computed(self):
        # One job: 4 nodes × 3600 s on an 8-node partition.
        records = [
            JobRecord(make_job(1, duration=3600.0, nodes=4), 0.0, 3600.0)
        ]
        result = ScheduleResult(records, [], 8, 64.0)
        model = PowerModel(idle_watts=100.0, active_watts=400.0)
        report = energy_report(result, model)
        # Active: 4 × 3600 × 300 W = 4.32e6 J = 1.2 kWh
        assert report.active_kwh == pytest.approx(1.2)
        # Idle: 8 nodes × 3600 s × 100 W = 2.88e6 J = 0.8 kWh
        assert report.idle_kwh == pytest.approx(0.8)
        assert report.total_kwh == pytest.approx(2.0)
        # Average power: 2 kWh over 1 h = 2 kW.
        assert report.average_kw == pytest.approx(2.0)
        assert report.idle_fraction == pytest.approx(0.4)
        assert report.energy_delay_product == pytest.approx(2.0 * 3600.0)

    def test_empty_schedule(self):
        report = energy_report(ScheduleResult([], [], 8, 64.0))
        assert report.total_kwh == 0.0
        assert report.idle_fraction == 0.0

    def test_shorter_makespan_saves_idle_energy(self):
        jobs = generate_workload(
            "heterogeneous_mix", 40, seed=5, arrival_mode="zero"
        )
        fcfs = run_sim(jobs, FCFSScheduler())
        opt = run_sim(jobs, AnnealingOptimizer(seed=0))
        reports = compare_energy({"fcfs": fcfs, "opt": opt})
        assert reports["opt"].active_kwh == pytest.approx(
            reports["fcfs"].active_kwh
        )
        if opt.makespan < fcfs.makespan:
            assert reports["opt"].idle_kwh < reports["fcfs"].idle_kwh
            assert reports["opt"].total_kwh < reports["fcfs"].total_kwh


class TestCompareEnergy:
    def test_rejects_mismatched_workloads(self):
        a = ScheduleResult(
            [JobRecord(make_job(1, duration=10.0, nodes=2), 0.0, 10.0)],
            [], 8, 64.0,
        )
        b = ScheduleResult(
            [JobRecord(make_job(1, duration=99.0, nodes=2), 0.0, 99.0)],
            [], 8, 64.0,
        )
        with pytest.raises(ValueError, match="not from the same workload"):
            compare_energy({"a": a, "b": b})
