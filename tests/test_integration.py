"""Cross-module integration tests: workload → scheduler → simulator →
metrics, for every registered policy."""

import pytest

import repro  # noqa: F401 - registers LLM schedulers
from repro.metrics.objectives import compute_metrics
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.sim.cluster import NodeLevelCluster, ResourcePool
from repro.sim.simulator import HPCSimulator
from repro.workloads.generator import generate_workload

ALL_SCHEDULERS = available_schedulers()


@pytest.mark.parametrize("scheduler_name", ALL_SCHEDULERS)
class TestEverySchedulerEndToEnd:
    def test_heterogeneous_mix_completes(self, scheduler_name):
        jobs = generate_workload("heterogeneous_mix", 25, seed=7)
        sched = create_scheduler(scheduler_name, seed=1)
        result = HPCSimulator(jobs=jobs, scheduler=sched).run()
        result.verify_capacity()
        assert sorted(r.job.job_id for r in result.records) == [
            j.job_id for j in jobs
        ]
        report = compute_metrics(result)
        assert report["makespan"] >= max(j.duration for j in jobs)
        assert 0 < report["node_utilization"] <= 1.0
        assert 0 < report["wait_fairness"] <= 1.0 + 1e-9
        assert 0 < report["user_fairness"] <= 1.0 + 1e-9

    def test_no_job_starts_before_submission(self, scheduler_name):
        jobs = generate_workload("bursty_idle", 20, seed=3)
        sched = create_scheduler(scheduler_name, seed=0)
        result = HPCSimulator(jobs=jobs, scheduler=sched).run()
        for rec in result.records:
            assert rec.start_time >= rec.job.submit_time - 1e-9

    def test_durations_respected(self, scheduler_name):
        jobs = generate_workload("resource_sparse", 12, seed=5)
        sched = create_scheduler(scheduler_name, seed=0)
        result = HPCSimulator(jobs=jobs, scheduler=sched).run()
        for rec in result.records:
            assert rec.end_time - rec.start_time == pytest.approx(
                rec.job.duration
            )


class TestClusterModelAgreement:
    def test_aggregate_vs_node_level_fcfs(self):
        """With evenly spread memory, both cluster models yield the same
        FCFS schedule on the paper's partition."""
        jobs = generate_workload("homogeneous_short", 30, seed=2)
        agg = HPCSimulator(
            jobs=jobs,
            scheduler=create_scheduler("fcfs"),
            cluster=ResourcePool(total_nodes=256, total_memory_gb=2048.0),
        ).run()
        node = HPCSimulator(
            jobs=jobs,
            scheduler=create_scheduler("fcfs"),
            cluster=NodeLevelCluster(node_count=256, memory_per_node_gb=8.0),
        ).run()
        assert {r.job.job_id: r.start_time for r in agg.records} == {
            r.job.job_id: r.start_time for r in node.records
        }


class TestWholePipelineDeterminism:
    @pytest.mark.parametrize(
        "scheduler_name", ["ortools_like", "claude-3.7-sim", "o4-mini-sim"]
    )
    def test_stochastic_schedulers_reproducible(self, scheduler_name):
        jobs = generate_workload("heterogeneous_mix", 30, seed=11)
        runs = []
        for _ in range(2):
            sched = create_scheduler(scheduler_name, seed=13)
            result = HPCSimulator(jobs=jobs, scheduler=sched).run()
            runs.append({r.job.job_id: r.start_time for r in result.records})
        assert runs[0] == runs[1]


class TestPaperScaleSmoke:
    def test_sixty_job_comparison_shapes(self):
        """The headline qualitative claims at one seed (fast sanity
        version of Fig. 3/4; the benchmarks do the full sweep)."""
        from repro.metrics.normalize import normalize_to_baseline

        jobs = generate_workload("heterogeneous_mix", 100, seed=1)
        results = {}
        for name in ("fcfs", "ortools_like", "claude-3.7-sim"):
            sched = create_scheduler(name, seed=7)
            results[name] = compute_metrics(
                HPCSimulator(jobs=jobs, scheduler=sched).run()
            ).values
        base = results["fcfs"]
        ortools = normalize_to_baseline(results["ortools_like"], base)
        claude = normalize_to_baseline(results["claude-3.7-sim"], base)
        # Optimization-based and LLM scheduling beat FCFS on utilization
        # under heterogeneous contention (paper §3.5/3.6).
        assert ortools["node_utilization"] > 1.1
        assert claude["node_utilization"] > 1.1
        # LLM agent preserves fairness better than the fairness-blind
        # optimizer (paper: OR-Tools trades fairness for utilization).
        assert claude["wait_fairness"] > ortools["wait_fairness"]
