"""Tests for the parallel experiment engine: determinism, streaming
artifacts, and resume."""

import re

import pytest

from repro.experiments.parallel import (
    CellFailedError,
    MatrixCell,
    SweepInterrupted,
    expand_cells,
    resolve_workers,
    run_cells,
    run_matrix_parallel,
)
from repro.experiments.runner import run_matrix
from repro.experiments.store import FailureSidecar, RunStore

SCENARIOS = ("adversarial", "resource_sparse")
SIZES = (10,)
SCHEDULERS = ("fcfs", "sjf")


class TestExpandCells:
    def test_canonical_order_matches_run_matrix_nesting(self):
        cells = expand_cells(
            SCENARIOS, (5, 10), SCHEDULERS, workload_seeds=(0, 1)
        )
        assert len(cells) == 2 * 2 * 2 * 2
        # scenario outermost, then size, scheduler, workload seed.
        assert [
            (c.scenario, c.n_jobs, c.scheduler, c.workload_seed)
            for c in cells[:4]
        ] == [
            ("adversarial", 5, "fcfs", 0),
            ("adversarial", 5, "fcfs", 1),
            ("adversarial", 5, "sjf", 0),
            ("adversarial", 5, "sjf", 1),
        ]
        assert cells[-1].scenario == "resource_sparse"

    def test_cell_key_matches_store_key(self):
        cell = MatrixCell("adversarial", 10, "fcfs", 2, 3)
        assert cell.key == (
            "adversarial", 10, "fcfs", 2, 3, "scenario", "none", "flat",
        )

    def test_arrival_mode_is_part_of_cell_identity(self):
        scenario_cell = MatrixCell("adversarial", 10, "fcfs")
        zero_cell = MatrixCell("adversarial", 10, "fcfs", arrival_mode="zero")
        assert scenario_cell.key != zero_cell.key


class TestResolveWorkers:
    def test_defaults_to_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_clamps_to_at_least_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1
        assert resolve_workers(3) == 3


class TestSerialParallelEquivalence:
    def test_identical_metrics_and_order(self):
        serial = run_matrix(SCENARIOS, SIZES, SCHEDULERS, workload_seed=1)
        parallel = run_matrix_parallel(
            SCENARIOS, SIZES, SCHEDULERS, workload_seeds=(1,), workers=2
        )
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            assert (s.scenario, s.n_jobs, s.scheduler) == (
                p.scenario, p.n_jobs, p.scheduler
            )
            # Bit-identical objective values, not just approximately.
            assert s.values == p.values

    def test_worker_count_does_not_change_results(self):
        one = run_matrix_parallel(SCENARIOS, SIZES, SCHEDULERS, workers=1)
        two = run_matrix_parallel(SCENARIOS, SIZES, SCHEDULERS, workers=2)
        assert [r.values for r in one] == [r.values for r in two]


class TestStoreStreaming:
    def test_every_cell_lands_in_store(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        runs = run_matrix_parallel(
            SCENARIOS, SIZES, SCHEDULERS, workers=2, store=store
        )
        stored = store.load()
        assert {r.key for r in stored} == {r.key for r in runs}
        # Persisted metrics equal the in-memory ones.
        by_key = {s.key: s for s in stored}
        for run in runs:
            assert by_key[run.key].metrics == run.values

    def test_store_accepts_plain_path(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        run_matrix_parallel(
            SCENARIOS[:1], SIZES, SCHEDULERS[:1], workers=1, store=path
        )
        assert len(RunStore(path)) == 1


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        first = run_matrix_parallel(
            SCENARIOS[:1], SIZES, SCHEDULERS, workers=1, store=store
        )
        assert len(first) == 2

        # Re-run over a superset: only the new scenario's cells execute.
        second = run_matrix_parallel(
            SCENARIOS, SIZES, SCHEDULERS, workers=1, store=store, resume=True
        )
        assert [(r.scenario, r.scheduler) for r in second] == [
            ("resource_sparse", "fcfs"),
            ("resource_sparse", "sjf"),
        ]
        assert len(store.load()) == 4

        # Fully-resumed sweep executes nothing and appends nothing.
        third = run_matrix_parallel(
            SCENARIOS, SIZES, SCHEDULERS, workers=2, store=store, resume=True
        )
        assert third == []
        assert len(store.load()) == 4

    def test_resumed_cells_match_fresh_metrics(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_matrix_parallel(
            SCENARIOS[:1], SIZES, SCHEDULERS, workers=1, store=store
        )
        run_matrix_parallel(
            SCENARIOS, SIZES, SCHEDULERS, workers=1, store=store, resume=True
        )
        fresh = run_matrix(SCENARIOS, SIZES, SCHEDULERS)
        persisted = {s.key: s.metrics for s in store.load()}
        for run in fresh:
            assert persisted[run.key] == run.values

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            run_cells([MatrixCell("adversarial", 5, "fcfs")], resume=True)

    def test_resume_does_not_cover_other_arrival_mode(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run_matrix_parallel(
            SCENARIOS[:1], SIZES, SCHEDULERS[:1], workers=1,
            store=store, arrival_mode="zero",
        )
        # Same matrix under scenario arrivals is a different experiment
        # and must execute despite resume.
        again = run_matrix_parallel(
            SCENARIOS[:1], SIZES, SCHEDULERS[:1], workers=1,
            store=store, resume=True,
        )
        assert len(again) == 1
        assert len(store.load()) == 2


class TestFailingCell:
    def test_failure_persists_completed_cells_and_raises(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        cells = [
            MatrixCell("adversarial", 8, "fcfs"),
            MatrixCell("adversarial", 8, "no-such-scheduler"),
        ]
        with pytest.raises(Exception, match="no-such-scheduler"):
            run_cells(cells, workers=2, store=store)
        # The good cell — finished or in flight at failure time — is
        # persisted, not silently discarded.
        assert {s.scheduler for s in store.load()} == {"fcfs"}

    def test_inline_failure_keeps_earlier_cells(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        cells = [
            MatrixCell("adversarial", 8, "fcfs"),
            MatrixCell("adversarial", 8, "no-such-scheduler"),
        ]
        with pytest.raises(Exception, match="no-such-scheduler"):
            run_cells(cells, workers=1, store=store)
        assert len(store.load()) == 1


class TestRetryPolicy:
    def test_invalid_on_cell_failure_rejected(self):
        with pytest.raises(ValueError, match="on_cell_failure"):
            run_cells(
                [MatrixCell("adversarial", 5, "fcfs")],
                workers=1, on_cell_failure="explode",
            )

    def test_abort_error_reports_attempt_count(self):
        cells = [MatrixCell("adversarial", 8, "no-such-scheduler")]
        with pytest.raises(
            CellFailedError, match=r"after 1 attempt\(s\)"
        ):
            run_cells(cells, workers=1, max_retries=0)
        with pytest.raises(
            CellFailedError, match=r"after 3 attempt\(s\)"
        ):
            run_cells(cells, workers=1, max_retries=2, retry_backoff_s=0.0)

    def test_quarantine_mode_finishes_healthy_cells(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        cells = [
            MatrixCell("adversarial", 8, "fcfs"),
            MatrixCell("adversarial", 8, "no-such-scheduler"),
            MatrixCell("adversarial", 8, "sjf"),
        ]
        failures = []
        runs = run_cells(
            cells, workers=1, store=store,
            max_retries=1, retry_backoff_s=0.0,
            on_cell_failure="quarantine", failures=failures,
        )
        assert [r.scheduler for r in runs] == ["fcfs", "sjf"]
        assert len(failures) == 1
        fc = failures[0]
        assert fc.kind == "exception"
        assert fc.attempts == 2
        assert "no-such-scheduler" in str(fc.key)
        assert fc.traceback_tail  # enough context to diagnose
        # The quarantined cell never pollutes the store, and the
        # sidecar record survives a reload.
        assert {s.scheduler for s in store.load()} == {"fcfs", "sjf"}
        sidecar = FailureSidecar.for_store(store)
        assert [f.key for f in sidecar.load()] == [fc.key]


class TestInterruptAccounting:
    def test_inline_interrupt_reports_counts(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        cells = expand_cells(SCENARIOS, (6,), SCHEDULERS)
        real = parallel_mod._execute_cell
        state = {"n": 0}

        def interrupting(cell, attempt=1):
            state["n"] += 1
            if state["n"] == 3:
                raise KeyboardInterrupt
            return real(cell, attempt)

        monkeypatch.setattr(parallel_mod, "_execute_cell", interrupting)
        with pytest.raises(
            SweepInterrupted,
            match=r"2 cell\(s\) completed \(0 salvaged\), 2 cancelled",
        ):
            run_cells(cells, workers=1)

    def test_pooled_interrupt_salvages_with_consistent_accounting(
        self, tmp_path
    ):
        cells = expand_cells(SCENARIOS, (6,), SCHEDULERS)
        store = RunStore(tmp_path / "runs.jsonl")
        calls = []
        state = {"raised": False}

        def progress(cell, completed, total):
            calls.append((completed, total))
            if not state["raised"]:
                state["raised"] = True
                raise KeyboardInterrupt

        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells(cells, workers=2, store=store, progress=progress)

        message = str(excinfo.value)
        m = re.fullmatch(
            r"sweep interrupted: (\d+) cell\(s\) completed "
            r"\((\d+) salvaged after interrupt\), (\d+) cancelled",
            message,
        )
        assert m, message
        completed, salvaged, cancelled = map(int, m.groups())
        # The books balance: every cell is completed or cancelled,
        # at least one finished before the interrupt and at least one
        # never ran.
        assert completed + cancelled == len(cells)
        assert completed >= 1
        assert salvaged == completed - 1
        assert cancelled >= 1
        # Everything reported completed is durably in the store.
        assert len(store.load()) == completed
        # Progress stayed consistent through the salvage phase:
        # monotonically increasing completed, constant total.
        assert [c for c, _ in calls] == list(range(1, completed + 1))
        assert {t for _, t in calls} == {len(cells)}
