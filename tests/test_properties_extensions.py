"""Property-based tests for the extension modules."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batching import create_batched_llm_scheduler
from repro.metrics.energy import PowerModel, energy_report
from repro.schedulers.heuristics import FirstFitScheduler
from repro.sim.cluster import ResourcePool
from repro.sim.job import Job, validate_dependencies
from repro.sim.simulator import HPCSimulator
from repro.workloads.dags import critical_path_length, layered_dag_workload
from repro.workloads.swf import jobs_from_swf, jobs_to_swf


# ---------------------------------------------------------------------------
# Dependency invariants on random DAGs
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=10**6),
    n_layers=st.integers(min_value=1, max_value=5),
)
def test_random_dag_dependencies_respected(n_jobs, seed, n_layers):
    jobs = layered_dag_workload(
        n_jobs, seed=seed, scenario="resource_sparse", n_layers=n_layers
    )
    validate_dependencies(jobs)
    sim = HPCSimulator(jobs=jobs, scheduler=FirstFitScheduler())
    result = sim.run()
    result.verify_capacity()
    recs = {r.job.job_id: r for r in result.records}
    assert len(recs) == n_jobs
    for job in jobs:
        for dep in job.depends_on:
            assert recs[job.job_id].start_time >= recs[dep].end_time - 1e-9
    # Makespan can never beat the dependency critical path.
    assert result.makespan >= critical_path_length(jobs) - 1e-6


# ---------------------------------------------------------------------------
# Batched agent invariants
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=300.0),
            st.floats(min_value=1.0, max_value=500.0),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=12,
    ),
    batch_size=st.integers(min_value=1, max_value=6),
    cooldown=st.sampled_from([0.0, 120.0]),
)
def test_batched_agent_invariants(raw, batch_size, cooldown):
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=submit,
            duration=duration,
            nodes=nodes,
            memory_gb=2.0,
        )
        for i, (submit, duration, nodes) in enumerate(raw)
    ]
    agent = create_batched_llm_scheduler(
        batch_size=batch_size, delay_cooldown_s=cooldown, seed=0
    )
    sim = HPCSimulator(
        jobs=jobs,
        scheduler=agent,
        cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
    )
    result = sim.run()
    result.verify_capacity()
    assert len(result.records) == len(jobs)
    for rec in result.records:
        assert rec.start_time >= rec.job.submit_time - 1e-9


# ---------------------------------------------------------------------------
# SWF round trip
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e5),
            st.floats(min_value=1.0, max_value=1e5),
            st.integers(min_value=1, max_value=256),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_swf_round_trip_preserves_core_fields(raw):
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=round(submit, 2),
            duration=round(duration, 2),
            nodes=nodes,
            memory_gb=float(nodes),  # 1 GB per node: exactly representable
            user=f"user_{user}",
        )
        for i, (submit, duration, nodes, user) in enumerate(raw)
    ]
    buf = io.StringIO()
    jobs_to_swf(jobs, buf)
    buf.seek(0)
    back = jobs_from_swf(buf)
    assert len(back) == len(jobs)
    for orig, new in zip(
        sorted(jobs, key=lambda j: (j.submit_time, j.job_id)), back
    ):
        assert new.job_id == orig.job_id
        assert new.nodes == orig.nodes
        assert new.user == orig.user
        assert new.submit_time == pytest.approx(orig.submit_time, abs=0.01)
        assert new.duration == pytest.approx(orig.duration, abs=0.01)


# ---------------------------------------------------------------------------
# Energy invariants
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1000.0),
            st.integers(min_value=1, max_value=8),
        ),
        min_size=1,
        max_size=10,
    ),
    idle=st.floats(min_value=0.0, max_value=200.0),
    extra=st.floats(min_value=0.0, max_value=400.0),
)
def test_energy_accounting_invariants(raw, idle, extra):
    jobs = [
        Job(job_id=i + 1, submit_time=0.0, duration=d, nodes=n, memory_gb=1.0)
        for i, (d, n) in enumerate(raw)
    ]
    sim = HPCSimulator(
        jobs=jobs,
        scheduler=FirstFitScheduler(),
        cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
    )
    result = sim.run()
    model = PowerModel(idle_watts=idle, active_watts=idle + extra)
    report = energy_report(result, model)
    assert report.active_kwh >= 0.0
    assert report.idle_kwh >= 0.0
    assert 0.0 <= report.idle_fraction <= 1.0
    assert report.total_kwh == pytest.approx(
        report.active_kwh + report.idle_kwh
    )
    # Average power is bounded by the all-nodes-active draw.
    max_kw = 8 * (idle + extra) / 1000.0
    assert report.average_kw <= max_kw + 1e-9
