"""Consistency checks on the public API surface."""

import importlib

import pytest

import repro
from repro.experiments.report import METRIC_LABELS
from repro.metrics.objectives import METRIC_NAMES


class TestExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.sim",
            "repro.workloads",
            "repro.schedulers",
            "repro.core",
            "repro.metrics",
            "repro.experiments",
            "repro.experiments.storage",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        assert repro.__version__


class TestMetricLabelCoverage:
    def test_every_metric_has_a_label(self):
        assert set(METRIC_LABELS) == set(METRIC_NAMES)


class TestRegistryProfileConsistency:
    def test_every_profile_has_a_registered_scheduler(self):
        from repro.core.profiles import MODEL_PROFILES
        from repro.schedulers.registry import available_schedulers

        for name in MODEL_PROFILES:
            assert name in available_schedulers()

    def test_registered_llm_names_round_trip(self):
        from repro.core.profiles import MODEL_PROFILES
        from repro.schedulers.registry import create_scheduler

        for name in MODEL_PROFILES:
            agent = create_scheduler(name, seed=0)
            assert agent.name == name
            assert agent.backend.profile.name == name


class TestPromptShowsBlockedJobs:
    def test_blocked_count_in_prompt(self):
        from repro.core.prompt import PromptBuilder
        from repro.core.scratchpad import Scratchpad
        from repro.sim.simulator import SystemView

        view = SystemView(
            now=0.0, queued=(), running=(), completed_ids=(),
            free_nodes=8, free_memory_gb=64.0, total_nodes=8,
            total_memory_gb=64.0, pending_arrivals=0,
            next_arrival_time=None, next_completion_time=None,
            blocked_jobs=3,
        )
        text = PromptBuilder().build(view, Scratchpad()).prompt_text
        assert "unmet dependencies" in text
        assert "3" in text

    def test_absent_when_no_blocked_jobs(self):
        from repro.core.prompt import PromptBuilder
        from repro.core.scratchpad import Scratchpad
        from repro.sim.simulator import SystemView

        view = SystemView(
            now=0.0, queued=(), running=(), completed_ids=(),
            free_nodes=8, free_memory_gb=64.0, total_nodes=8,
            total_memory_gb=64.0, pending_arrivals=0,
            next_arrival_time=None, next_completion_time=None,
        )
        text = PromptBuilder().build(view, Scratchpad()).prompt_text
        assert "unmet dependencies" not in text
