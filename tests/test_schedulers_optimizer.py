"""Unit tests for the annealing optimizer (OR-Tools substitute)."""

import pytest

from repro.metrics.objectives import compute_metrics
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.optimizer import AnnealingConfig, AnnealingOptimizer
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


class TestBasicBehaviour:
    def test_schedules_everything(self):
        jobs = [make_job(i, duration=10.0 * i, nodes=i) for i in range(1, 6)]
        result = run_sim(jobs, AnnealingOptimizer(seed=0), nodes=8, memory=64.0)
        assert len(result.records) == 5

    def test_deterministic_under_seed(self):
        jobs = generate_workload("heterogeneous_mix", 30, seed=2)
        a = run_sim(jobs, AnnealingOptimizer(seed=9))
        b = run_sim(jobs, AnnealingOptimizer(seed=9))
        assert {r.job.job_id: r.start_time for r in a.records} == {
            r.job.job_id: r.start_time for r in b.records
        }

    def test_never_beats_capacity(self):
        jobs = generate_workload("high_parallelism", 30, seed=4)
        result = run_sim(jobs, AnnealingOptimizer(seed=1))
        result.verify_capacity()


class TestOptimization:
    def test_at_least_matches_fcfs_makespan_static(self):
        # With all jobs at t=0 the optimizer should never lose to FCFS
        # on makespan (it can always reproduce arrival order).
        jobs = generate_workload(
            "heterogeneous_mix", 40, seed=5, arrival_mode="zero"
        )
        fcfs = compute_metrics(run_sim(jobs, FCFSScheduler()))
        opt = compute_metrics(run_sim(jobs, AnnealingOptimizer(seed=0)))
        assert opt["makespan"] <= fcfs["makespan"] * 1.01

    def test_improves_contended_makespan(self):
        # Crafted pathological FCFS order: big job blocks small ones.
        jobs = [
            make_job(1, duration=100.0, nodes=5),
            make_job(2, duration=100.0, nodes=4),
            make_job(3, duration=100.0, nodes=3),
            make_job(4, duration=100.0, nodes=4),
        ]
        fcfs = compute_metrics(run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0))
        opt = compute_metrics(
            run_sim(jobs, AnnealingOptimizer(seed=0), nodes=8, memory=64.0)
        )
        # Optimal pairing (5+3, 4+4) finishes in 200; FCFS serial order
        # (5 | 4+3 | 4) needs 300.
        assert fcfs["makespan"] == pytest.approx(300.0)
        assert opt["makespan"] == pytest.approx(200.0)


class TestReplanning:
    def test_replans_on_arrivals(self):
        jobs = [
            make_job(1, submit=0.0, duration=50.0, nodes=4),
            make_job(2, submit=10.0, duration=10.0, nodes=4),
            make_job(3, submit=20.0, duration=10.0, nodes=4),
        ]
        sched = AnnealingOptimizer(seed=0)
        result = run_sim(jobs, sched, nodes=8, memory=64.0)
        assert result.extras["replans"] >= 2

    def test_plan_stats_recorded(self):
        jobs = generate_workload("heterogeneous_mix", 20, seed=1)
        sched = AnnealingOptimizer(seed=0)
        result = run_sim(jobs, sched)
        stats = result.extras["plan_stats"]
        assert stats
        assert all(s.final_objective <= s.initial_objective + 1e-9 for s in stats)


class TestConfig:
    def test_iterations_scale_with_queue(self):
        config = AnnealingConfig(
            base_iterations=10, per_job_iterations=2, max_iterations=50
        )
        assert config.iterations_for(5) == 20
        assert config.iterations_for(1000) == 50

    def test_custom_config_used(self):
        jobs = generate_workload("heterogeneous_mix", 15, seed=0)
        sched = AnnealingOptimizer(
            seed=0, config=AnnealingConfig(base_iterations=1, per_job_iterations=0)
        )
        result = run_sim(jobs, sched)
        assert len(result.records) == 15
