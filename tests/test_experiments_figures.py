"""Tests for the per-figure drivers (scaled-down instances)."""

import math

import pytest

from repro.experiments import figures
from repro.metrics.objectives import METRIC_NAMES

SMALL_SCHEDULERS = ("fcfs", "sjf", "claude-3.7-sim")


class TestFigure2:
    def test_trace_kinds_collected(self):
        samples = figures.figure2(n_jobs=12, seed=0)
        kinds = {s.action.split("(")[0] for s in samples}
        assert "StartJob" in kinds or "BackfillJob" in kinds
        assert any("Stop" == s.action for s in samples)

    def test_rejected_trace_has_feedback(self):
        samples = figures.figure2(
            n_jobs=15, seed=1, hallucination_rate=0.6,
            scenario="high_parallelism",
        )
        rejected = [s for s in samples if not s.accepted]
        if rejected:  # hallucination must have found an infeasible target
            assert rejected[0].feedback

    def test_render(self):
        samples = figures.figure2(n_jobs=8, seed=0)
        text = samples[0].render()
        assert "# Thought" in text
        assert "# Action" in text


class TestFigure3:
    def test_structure_and_baseline(self):
        data = figures.figure3(
            n_jobs=12,
            schedulers=SMALL_SCHEDULERS,
            scenarios=("resource_sparse", "adversarial"),
        )
        assert set(data) == {"resource_sparse", "adversarial"}
        for block in data.values():
            assert set(block) == set(SMALL_SCHEDULERS)
            for value in block["fcfs"].values():
                assert value == pytest.approx(1.0) or math.isnan(value)
            for metrics in block.values():
                assert set(metrics) == set(METRIC_NAMES)


class TestMatrixBlocks:
    def test_blocks_from_stored_runs(self):
        from repro.experiments.parallel import run_matrix_parallel
        from repro.experiments.store import StoredRun

        runs = run_matrix_parallel(
            ("resource_sparse",), (8,), SMALL_SCHEDULERS, workers=1
        )
        stored = [StoredRun.from_run(r) for r in runs]
        blocks = figures.matrix_blocks(stored)
        assert set(blocks) == {
            ("resource_sparse", 8, 0, "scenario", "none", "flat")
        }
        block = blocks[
            ("resource_sparse", 8, 0, "scenario", "none", "flat")
        ]
        assert list(block)[0] == "fcfs"  # baseline renders first
        assert set(block) == set(SMALL_SCHEDULERS)
        for value in block["fcfs"].values():
            assert value == pytest.approx(1.0) or math.isnan(value)

    def test_averages_over_scheduler_seeds(self):
        from repro.experiments.store import StoredRun

        def stored(seed, makespan):
            return StoredRun(
                scenario="s", n_jobs=4, scheduler="x",
                workload_seed=0, scheduler_seed=seed,
                metrics={"makespan": makespan},
            )

        blocks = figures.matrix_blocks([stored(0, 100.0), stored(1, 200.0)])
        # No fcfs baseline in the group: raw (averaged) values.
        key = ("s", 4, 0, "scenario", "none", "flat")
        assert blocks[key]["x"]["makespan"] == pytest.approx(150.0)

    def test_arrival_modes_are_separate_instances(self):
        from repro.experiments.store import StoredRun

        def stored(mode, makespan):
            return StoredRun(
                scenario="s", n_jobs=4, scheduler="x",
                workload_seed=0, scheduler_seed=0,
                metrics={"makespan": makespan}, arrival_mode=mode,
            )

        blocks = figures.matrix_blocks(
            [stored("scenario", 100.0), stored("zero", 300.0)]
        )
        # Different arrival processes are different experiments: no
        # cross-mode averaging.
        assert blocks[
            ("s", 4, 0, "scenario", "none", "flat")
        ]["x"]["makespan"] == 100.0
        assert blocks[
            ("s", 4, 0, "zero", "none", "flat")
        ]["x"]["makespan"] == 300.0


class TestFigure4:
    def test_sizes_covered(self):
        data = figures.figure4(sizes=[5, 10], schedulers=SMALL_SCHEDULERS)
        assert set(data) == {5, 10}
        assert set(data[5]) == set(SMALL_SCHEDULERS)


class TestFigure5:
    def test_overhead_per_scenario(self):
        data = figures.figure5(
            n_jobs=8,
            models=("claude-3.7-sim",),
            scenarios=("resource_sparse",),
        )
        ov = data["resource_sparse"]["claude-3.7-sim"]
        assert ov.n_accepted_placements == 8
        assert ov.elapsed_s > 0


class TestFigure6:
    def test_call_counts_scale_with_jobs(self):
        data = figures.figure6(sizes=[5, 15], models=("claude-3.7-sim",))
        small = data[5]["claude-3.7-sim"]
        large = data[15]["claude-3.7-sim"]
        assert large.n_accepted_placements == 15
        assert large.n_calls > small.n_calls
        assert large.elapsed_s > small.elapsed_s


class TestFigure7:
    def test_deterministic_methods_are_flat(self):
        data = figures.figure7(
            n_jobs=15, n_repeats=3, schedulers=("fcfs", "sjf"),
        )
        for metric, bs in data["fcfs"].items():
            assert bs.iqr == pytest.approx(0.0)
            assert bs.n == 3

    def test_structure(self):
        data = figures.figure7(
            n_jobs=10, n_repeats=2, schedulers=("fcfs", "claude-3.7-sim"),
        )
        assert set(data) == {"fcfs", "claude-3.7-sim"}
        assert set(data["fcfs"]) == set(METRIC_NAMES)


class TestFigure8:
    def test_polaris_block(self):
        data = figures.figure8(n_jobs=20, schedulers=SMALL_SCHEDULERS)
        assert set(data) == set(SMALL_SCHEDULERS)
        for value in data["fcfs"].values():
            assert value == pytest.approx(1.0) or math.isnan(value)
