"""Tests for the sharded run store and the unified storage API."""

import json

import pytest

from repro.experiments.store import RunStore, StoredRun, cell_key
from repro.experiments.storage import (
    DEFAULT_SHARDS,
    MANIFEST_NAME,
    ShardedStore,
    StoreBackend,
    detect_format,
    is_sharded_store,
    open_store,
    shard_index,
    shard_name,
    store_digest,
)


def make_stored(**overrides) -> StoredRun:
    base = dict(
        scenario="adversarial",
        n_jobs=10,
        scheduler="fcfs",
        workload_seed=0,
        scheduler_seed=0,
        metrics={"makespan": 100.0, "avg_wait_time": 3.5},
        decision_summary={"n_decisions": 11, "n_accepted": 10,
                          "n_rejected": 1, "by_kind": {"StartJob": 10}},
        overhead=None,
    )
    base.update(overrides)
    return StoredRun(**base)


def fill(store, n=12):
    """Append *n* distinct-key runs; returns them in append order."""
    runs = []
    for i in range(n):
        run = make_stored(
            scenario=("adversarial", "resource_sparse")[i % 2],
            n_jobs=10 + i,
            metrics={"makespan": 100.0 + i},
        )
        store.append(run)
        runs.append(run)
    return runs


class TestShardRouting:
    def test_stable_and_in_range(self):
        key = cell_key("adversarial", 10, "fcfs", 0, 0)
        first = shard_index(key, 16)
        assert first == shard_index(key, 16)  # pure function of the key
        assert 0 <= first < 16
        assert shard_index(key, 1) == 0

    def test_spreads_keys(self):
        # 64 distinct keys over 8 shards should never collapse onto one.
        indexes = {
            shard_index(cell_key("adversarial", n, "fcfs", 0, 0), 8)
            for n in range(64)
        }
        assert len(indexes) > 1

    def test_shard_name(self):
        assert shard_name(0) == "shard-000.jsonl"
        assert shard_name(42) == "shard-042.jsonl"


class TestShardedStoreBasics:
    def test_append_load_get_len(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        runs = fill(store, 10)
        assert len(store) == 10
        loaded = store.load()
        assert sorted(loaded, key=lambda r: r.key) == loaded
        assert {r.key for r in loaded} == {r.key for r in runs}
        some = runs[3]
        assert store.get(some.key) == some
        assert some.key in store
        assert cell_key("missing", 1, "fcfs", 0, 0) not in store
        assert store.completed_keys() == {r.key for r in runs}

    def test_load_order_is_canonical(self, tmp_path):
        """load() order is a pure function of the run set, not of the
        append interleaving — the determinism armor for concurrent
        writers."""
        a = ShardedStore(tmp_path / "a.store", n_shards=4)
        b = ShardedStore(tmp_path / "b.store", n_shards=4)
        runs = fill(a, 8)
        for run in reversed(runs):
            b.append(run)
        assert a.load() == b.load()

    def test_last_write_wins(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        run = make_stored()
        store.append(run)
        newer = make_stored(metrics={"makespan": 42.0})
        store.append(newer)
        assert store.get(run.key).metrics["makespan"] == 42.0
        assert len(store) == 1

    def test_append_routes_to_owning_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        run = make_stored()
        store.append(run)
        owner = tmp_path / "runs.store" / shard_name(
            shard_index(run.key, 4)
        )
        written = StoredRun.from_json(owner.read_text().strip())
        assert written.key == run.key

    def test_sidecar_path(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        assert store.sidecar_path == tmp_path / "runs.store" / (
            "failures.jsonl"
        )


class TestManifest:
    def test_written_on_first_append(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        store.append(make_stored())
        manifest = json.loads(
            (tmp_path / "runs.store" / MANIFEST_NAME).read_text()
        )
        assert manifest["n_shards"] == 4
        assert manifest["format"] == "sharded-runstore"

    def test_ensure_initialized_touches_all_shards(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        store.ensure_initialized()
        for i in range(4):
            assert (tmp_path / "runs.store" / shard_name(i)).exists()

    def test_manifest_wins_on_reopen(self, tmp_path):
        ShardedStore(tmp_path / "runs.store", n_shards=4).append(
            make_stored()
        )
        again = ShardedStore(tmp_path / "runs.store")
        assert again.n_shards == 4

    def test_n_shards_conflict_raises(self, tmp_path):
        ShardedStore(tmp_path / "runs.store", n_shards=4).append(
            make_stored()
        )
        with pytest.raises(ValueError, match="n_shards"):
            ShardedStore(tmp_path / "runs.store", n_shards=8)

    def test_lost_manifest_inferred_from_files(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=6)
        fill(store, 8)
        (tmp_path / "runs.store" / MANIFEST_NAME).unlink()
        again = ShardedStore(tmp_path / "runs.store")
        assert again.n_shards == 6
        assert len(again.load()) == 8

    def test_corrupt_manifest_mentions_doctor(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        store.append(make_stored())
        (tmp_path / "runs.store" / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(ValueError, match="doctor"):
            ShardedStore(tmp_path / "runs.store")


class TestCompaction:
    def test_explicit_compact_drops_superseded(self, tmp_path):
        store = ShardedStore(
            tmp_path / "runs.store", n_shards=2,
            auto_compact_threshold=None,
        )
        for _ in range(3):
            fill(store, 6)
        before = sum(
            len((tmp_path / "runs.store" / shard_name(i))
                .read_text().strip().splitlines())
            for i in range(2)
        )
        assert before == 18
        removed = store.compact()
        assert removed == 12
        assert len(store) == 6

    def test_auto_compaction(self, tmp_path):
        store = ShardedStore(
            tmp_path / "runs.store", n_shards=1,
            auto_compact_threshold=5,
        )
        run = make_stored()
        for i in range(12):
            store.append(
                make_stored(metrics={"makespan": float(i)})
            )
        shard = tmp_path / "runs.store" / shard_name(0)
        n_lines = len(shard.read_text().strip().splitlines())
        assert n_lines < 12  # superseded lines were compacted away
        assert store.get(run.key).metrics["makespan"] == 11.0

    def test_compact_skips_corrupt_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=1)
        fill(store, 4)
        shard = tmp_path / "runs.store" / shard_name(0)
        shard.write_text("{garbage\n" + shard.read_text())
        assert store.compact() == 0  # never quarantines silently
        assert "{garbage" in shard.read_text()


class TestShardedDoctor:
    def test_healthy(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        fill(store, 4)
        report = store.doctor()
        assert report.clean
        assert report.n_quarantined == 0
        assert "healthy" in report.summary()

    def test_quarantines_corrupt_shard_line(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        fill(store, 6)
        shard = tmp_path / "runs.store" / shard_name(0)
        shard.write_text("{garbage\n" + shard.read_text())
        report = store.doctor()
        assert not report.clean
        assert report.n_quarantined == 1
        assert store.load()  # strict load works again

    def test_dry_run_leaves_files(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        fill(store, 4)
        shard = tmp_path / "runs.store" / shard_name(0)
        original = "{garbage\n" + shard.read_text()
        shard.write_text(original)
        report = store.doctor(dry_run=True)
        assert not report.clean
        assert shard.read_text() == original

    def test_repairs_lost_manifest(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        fill(store, 6)
        (tmp_path / "runs.store" / MANIFEST_NAME).unlink()
        report = ShardedStore(tmp_path / "runs.store").doctor()
        assert report.manifest_repaired
        manifest = json.loads(
            (tmp_path / "runs.store" / MANIFEST_NAME).read_text()
        )
        assert manifest["n_shards"] == 4

    def test_dedupe(self, tmp_path):
        store = ShardedStore(
            tmp_path / "runs.store", n_shards=2,
            auto_compact_threshold=None,
        )
        fill(store, 4)
        fill(store, 4)
        report = store.doctor(dedupe=True)
        assert report.n_deduped == 4


class TestIterRuns:
    def test_full_pin_fast_path(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        runs = fill(store, 8)
        target = runs[2]
        got = list(store.iter_runs({
            "scenario": target.scenario,
            "n_jobs": target.n_jobs,
            "scheduler": target.scheduler,
            "workload_seed": target.workload_seed,
            "scheduler_seed": target.scheduler_seed,
            "arrival_mode": target.arrival_mode,
            "disruption_sig": target.disruption_sig,
            "topology_sig": target.topology_sig,
        }))
        assert got == [target]

    def test_partial_where(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        runs = fill(store, 8)
        got = list(store.iter_runs({"scenario": "adversarial"}))
        want = sorted(
            (r for r in runs if r.scenario == "adversarial"),
            key=lambda r: r.key,
        )
        assert got == want

    def test_where_coerces_int_fields(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        runs = fill(store, 4)
        got = list(store.iter_runs({"n_jobs": str(runs[1].n_jobs)}))
        assert got == [runs[1]]

    def test_keys_prunes(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=4)
        runs = fill(store, 8)
        wanted = {runs[0].key, runs[5].key}
        got = list(store.iter_runs(keys=wanted))
        assert {r.key for r in got} == wanted

    def test_unknown_field_raises(self, tmp_path):
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        with pytest.raises(ValueError, match="queryable fields"):
            list(store.iter_runs({"bogus": 1}))

    def test_runstore_iter_runs_matches(self, tmp_path):
        """Both backends answer the same query identically."""
        flat = RunStore(tmp_path / "runs.jsonl")
        sharded = ShardedStore(tmp_path / "runs.store", n_shards=4)
        for run in fill(flat, 8):
            sharded.append(run)
        where = {"scenario": "resource_sparse"}
        assert (
            sorted(flat.iter_runs(where), key=lambda r: r.key)
            == list(sharded.iter_runs(where))
        )


class TestOpenStore:
    def test_sniffs_jsonl_file(self, tmp_path):
        RunStore(tmp_path / "runs.jsonl").append(make_stored())
        store = open_store(tmp_path / "runs.jsonl")
        assert isinstance(store, RunStore)
        assert detect_format(tmp_path / "runs.jsonl") == "jsonl"

    def test_sniffs_sharded_dir(self, tmp_path):
        ShardedStore(tmp_path / "runs.store", n_shards=2).append(
            make_stored()
        )
        store = open_store(tmp_path / "runs.store")
        assert isinstance(store, ShardedStore)
        assert is_sharded_store(tmp_path / "runs.store")
        assert detect_format(tmp_path / "runs.store") == "sharded"

    def test_fresh_path_defaults_to_jsonl(self, tmp_path):
        assert isinstance(open_store(tmp_path / "new.jsonl"), RunStore)

    def test_fresh_path_sharded_format(self, tmp_path):
        store = open_store(
            tmp_path / "new.store", format="sharded", n_shards=4
        )
        assert isinstance(store, ShardedStore)
        assert store.n_shards == 4

    def test_default_shards(self, tmp_path):
        store = open_store(tmp_path / "new.store", format="sharded")
        assert store.n_shards == DEFAULT_SHARDS

    def test_format_mismatch_mentions_migrate(self, tmp_path):
        RunStore(tmp_path / "runs.jsonl").append(make_stored())
        with pytest.raises(ValueError, match="migrate"):
            open_store(tmp_path / "runs.jsonl", format="sharded")

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            open_store(tmp_path / "x", format="parquet")

    def test_both_backends_satisfy_protocol(self, tmp_path):
        assert isinstance(RunStore(tmp_path / "a.jsonl"), StoreBackend)
        assert isinstance(
            ShardedStore(tmp_path / "b.store", n_shards=2), StoreBackend
        )


class TestStoreDigest:
    def test_layout_independent(self, tmp_path):
        flat = RunStore(tmp_path / "runs.jsonl")
        sharded = ShardedStore(tmp_path / "runs.store", n_shards=4)
        for run in fill(flat, 8):
            sharded.append(run)
        assert store_digest(flat) == store_digest(sharded)

    def test_order_independent(self, tmp_path):
        a = RunStore(tmp_path / "a.jsonl")
        b = RunStore(tmp_path / "b.jsonl")
        runs = fill(a, 6)
        for run in reversed(runs):
            b.append(run)
        assert store_digest(a) == store_digest(b)

    def test_content_sensitive(self, tmp_path):
        a = RunStore(tmp_path / "a.jsonl")
        b = RunStore(tmp_path / "b.jsonl")
        fill(a, 4)
        fill(b, 5)
        assert store_digest(a) != store_digest(b)
