"""Unit tests for LLM backends."""

import pytest

from repro.core.backends import (
    ScriptedBackend,
    SimulatedReasoningBackend,
    make_call_record,
)
from repro.core.grammar import parse_reply
from repro.core.profiles import CLAUDE_37_SIM, O4_MINI_SIM
from repro.core.prompt import PromptBuilder
from repro.core.scratchpad import Scratchpad
from repro.sim.actions import Delay, StartJob
from repro.sim.simulator import SystemView

from tests.conftest import make_job


def ctx_with_queue(jobs=(), now=0.0):
    view = SystemView(
        now=now,
        queued=tuple(jobs),
        running=(),
        completed_ids=(),
        free_nodes=8,
        free_memory_gb=64.0,
        total_nodes=8,
        total_memory_gb=64.0,
        pending_arrivals=0,
        next_arrival_time=None,
        next_completion_time=None,
    )
    return PromptBuilder().build(view, Scratchpad())


class TestSimulatedBackend:
    def test_reply_is_parseable_react(self):
        backend = SimulatedReasoningBackend(CLAUDE_37_SIM, seed=0)
        ctx = ctx_with_queue([make_job(1, nodes=2)])
        reply = backend.complete(ctx.prompt_text, ctx)
        parsed = parse_reply(reply.text)
        assert parsed.action == StartJob(1)
        assert parsed.thought

    def test_latency_positive_and_tokens_counted(self):
        backend = SimulatedReasoningBackend(CLAUDE_37_SIM, seed=0)
        ctx = ctx_with_queue([make_job(1, nodes=2)])
        reply = backend.complete(ctx.prompt_text, ctx)
        assert reply.latency_s > 0
        assert reply.input_tokens > 100
        assert 0 < reply.output_tokens <= CLAUDE_37_SIM.max_tokens

    def test_deterministic_under_seed(self):
        ctx = ctx_with_queue([make_job(1, nodes=2), make_job(2, nodes=4)])
        a = SimulatedReasoningBackend(O4_MINI_SIM, seed=3)
        b = SimulatedReasoningBackend(O4_MINI_SIM, seed=3)
        ra = a.complete(ctx.prompt_text, ctx)
        rb = b.complete(ctx.prompt_text, ctx)
        assert ra.text == rb.text
        assert ra.latency_s == rb.latency_s

    def test_reset_restores_streams(self):
        ctx = ctx_with_queue([make_job(1, nodes=2)])
        backend = SimulatedReasoningBackend(O4_MINI_SIM, seed=5)
        first = backend.complete(ctx.prompt_text, ctx)
        backend.complete(ctx.prompt_text, ctx)
        backend.reset()
        again = backend.complete(ctx.prompt_text, ctx)
        assert first.latency_s == again.latency_s
        assert first.text == again.text

    def test_name_matches_profile(self):
        assert SimulatedReasoningBackend(CLAUDE_37_SIM).name == "claude-3.7-sim"


class TestScriptedBackend:
    def test_plays_in_order(self):
        backend = ScriptedBackend(["Thought: a\nAction: Delay", "Thought: b\nAction: Stop"])
        ctx = ctx_with_queue()
        assert "a" in backend.complete("p", ctx).text
        assert "b" in backend.complete("p", ctx).text

    def test_repeats_last_when_exhausted(self):
        backend = ScriptedBackend(["Thought: x\nAction: Delay"])
        ctx = ctx_with_queue()
        backend.complete("p", ctx)
        assert "x" in backend.complete("p", ctx).text

    def test_strict_raises_when_exhausted(self):
        backend = ScriptedBackend(["Thought: x\nAction: Delay"], strict=True)
        ctx = ctx_with_queue()
        backend.complete("p", ctx)
        with pytest.raises(RuntimeError, match="exhausted"):
            backend.complete("p", ctx)

    def test_reset_rewinds(self):
        backend = ScriptedBackend(["Thought: 1\nAction: Delay", "Thought: 2\nAction: Delay"])
        ctx = ctx_with_queue()
        backend.complete("p", ctx)
        backend.reset()
        assert "1" in backend.complete("p", ctx).text


class TestCallRecords:
    def test_make_call_record_tags(self):
        from repro.core.backends import LLMReply

        reply = LLMReply("Thought: t\nAction: Delay", 2.5, 100, 10)
        record = make_call_record(
            time=5.0, reply=reply, action=Delay, queue_len=3, model="m"
        )
        assert record.action_tag == "delay"
        assert not record.is_placement
        assert record.accepted  # provisional

    def test_placement_detection(self):
        from repro.core.backends import LLMReply

        reply = LLMReply("x", 1.0, 1, 1)
        rec = make_call_record(
            time=0.0, reply=reply, action=StartJob(1), queue_len=1, model="m"
        )
        assert rec.is_placement
