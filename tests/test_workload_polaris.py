"""Unit tests for the Polaris trace substitute and preprocessing."""

import pytest

from repro.workloads.polaris import (
    POLARIS_MEMORY_PER_NODE_GB,
    POLARIS_NODES,
    RawTraceRecord,
    preprocess_trace,
    synthesize_polaris_trace,
)


class TestSynthesizer:
    def test_record_count(self):
        assert len(synthesize_polaris_trace(n_jobs=50, seed=1)) == 50

    def test_deterministic(self):
        a = synthesize_polaris_trace(n_jobs=30, seed=4)
        b = synthesize_polaris_trace(n_jobs=30, seed=4)
        assert a == b

    def test_submission_order(self):
        records = synthesize_polaris_trace(n_jobs=80, seed=2)
        submits = [r.submit_ts for r in records]
        assert submits == sorted(submits)

    def test_failed_fraction_approximate(self):
        records = synthesize_polaris_trace(n_jobs=2000, seed=3, failed_fraction=0.2)
        failed = sum(1 for r in records if r.exit_status == -1)
        assert 0.15 <= failed / 2000 <= 0.25

    def test_node_counts_in_partition(self):
        records = synthesize_polaris_trace(n_jobs=300, seed=5)
        assert all(1 <= r.nodes_requested <= POLARIS_NODES for r in records)

    def test_runtime_within_walltime(self):
        records = synthesize_polaris_trace(n_jobs=200, seed=6)
        completed = [r for r in records if r.exit_status == 0]
        assert all(
            r.runtime_s <= r.walltime_requested_s + 1e-6 for r in completed
        )

    def test_start_after_submit(self):
        records = synthesize_polaris_trace(n_jobs=100, seed=7)
        assert all(r.queued_wait_s >= 0 for r in records)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_polaris_trace(n_jobs=-1)
        with pytest.raises(ValueError):
            synthesize_polaris_trace(failed_fraction=1.0)


class TestPreprocessing:
    def test_filters_failed_jobs(self):
        records = synthesize_polaris_trace(n_jobs=200, seed=8, failed_fraction=0.3)
        jobs = preprocess_trace(records, n_jobs=None)
        n_completed = sum(1 for r in records if r.exit_status != -1)
        assert len(jobs) == n_completed

    def test_takes_first_n(self):
        records = synthesize_polaris_trace(n_jobs=150, seed=9)
        jobs = preprocess_trace(records, n_jobs=100)
        assert len(jobs) == 100

    def test_normalized_to_earliest_submission(self):
        records = synthesize_polaris_trace(n_jobs=50, seed=10)
        jobs = preprocess_trace(records, n_jobs=None)
        assert jobs[0].submit_time == 0.0
        assert all(j.submit_time >= 0 for j in jobs)

    def test_users_factorized_in_first_seen_order(self):
        records = synthesize_polaris_trace(n_jobs=60, seed=11)
        jobs = preprocess_trace(records, n_jobs=None)
        assert jobs[0].user == "User_1"
        assert all(j.user.startswith("User_") for j in jobs)
        assert all(j.group.startswith("Group_") for j in jobs)

    def test_memory_derived_from_nodes(self):
        records = synthesize_polaris_trace(n_jobs=40, seed=12)
        jobs = preprocess_trace(records, n_jobs=None)
        assert all(
            j.memory_gb == j.nodes * POLARIS_MEMORY_PER_NODE_GB for j in jobs
        )

    def test_walltime_at_least_duration(self):
        records = synthesize_polaris_trace(n_jobs=40, seed=13)
        jobs = preprocess_trace(records, n_jobs=None)
        assert all(j.walltime >= j.duration for j in jobs)

    def test_empty_input(self):
        assert preprocess_trace([]) == []

    def test_all_failed(self):
        rec = RawTraceRecord(
            job_name="x", user="u", group="g",
            submit_ts=0.0, start_ts=1.0, end_ts=2.0,
            nodes_requested=1, walltime_requested_s=100.0, exit_status=-1,
        )
        assert preprocess_trace([rec]) == []

    def test_schedulable_on_polaris_partition(self):
        records = synthesize_polaris_trace(n_jobs=120, seed=14)
        jobs = preprocess_trace(records, n_jobs=100)
        total_mem = POLARIS_NODES * POLARIS_MEMORY_PER_NODE_GB
        assert all(
            j.nodes <= POLARIS_NODES and j.memory_gb <= total_mem for j in jobs
        )
