"""End-to-end daemon tests: real socket, real protocol, sync client.

Driven through :class:`~repro.service.embedded.EmbeddedServer`, which
runs the exact ``run_server`` code path the ``repro-sched serve`` CLI
uses (minus signal handlers) on a background thread. Pins the ISSUE-8
serving invariants:

* served schedules are byte-identical to batch ``run_single`` — the
  digest crosses the wire intact (``wire_digest`` == server digest ==
  batch digest);
* interleaved sessions equal their serial batch references;
* a repeated ``run_cell`` never simulates twice (memory hit), and a
  store-backed cache answers across a daemon restart;
* graceful shutdown completes in-flight requests;
* error responses carry stable types.
"""

import threading
import time

import pytest

from repro.experiments.runner import run_single
from repro.service.client import ServiceError
from repro.service.embedded import EmbeddedServer
from repro.service.protocol import schedule_digest, wire_digest
from repro.workloads.generator import generate_workload


def sorted_jobs(scenario, n, seed):
    return sorted(
        generate_workload(scenario, n, seed=seed),
        key=lambda j: (j.submit_time, j.job_id),
    )


def batch_digest(scenario, n, scheduler, wseed, sseed=0) -> str:
    run = run_single(
        scenario, n, scheduler, workload_seed=wseed, scheduler_seed=sseed
    )
    return schedule_digest(run.result, run.metrics.as_dict())


def cell_config(scheduler="fcfs", n_jobs=10, workload_seed=0):
    return {
        "scenario": "adversarial",
        "n_jobs": n_jobs,
        "scheduler": scheduler,
        "workload_seed": workload_seed,
        "scheduler_seed": 0,
        "arrival_mode": "scenario",
        "disruptions": None,
        "restart_policy": "resubmit",
        "checkpoint_interval": None,
        "topology": None,
        "anneal_window": None,
        "engine": "soa",
    }


@pytest.fixture(scope="module")
def server():
    with EmbeddedServer(workers=1) as srv:
        yield srv


class TestServedSchedules:
    def test_round_trip_digest_equals_batch(self, server):
        jobs = sorted_jobs("heterogeneous_mix", 30, 5)
        with server.client() as client:
            sid = client.open_session(scheduler="fcfs", scheduler_seed=0)
            for i in range(0, len(jobs), 10):
                ack = client.submit_jobs(sid, jobs[i:i + 10])
                assert ack["added"] == len(jobs[i:i + 10])
            sched = client.get_schedule(sid)
            client.close_session(sid)
        # Server-side digest == digest recomputed from the JSON that
        # actually crossed the socket == batch reference digest.
        assert sched["digest"] == wire_digest(
            sched["records"],
            sched["decisions"],
            sched["preemptions"],
            sched["metrics"],
        )
        assert sched["digest"] == batch_digest(
            "heterogeneous_mix", 30, "fcfs", 5
        )

    def test_jobs_accepted_as_wire_dicts(self, server):
        with server.client() as client:
            sid = client.open_session(scheduler="fcfs")
            client.submit_jobs(
                sid,
                [
                    {
                        "job_id": 1,
                        "submit_time": 0.0,
                        "duration": 10.0,
                        "nodes": 2,
                        "memory_gb": 8.0,
                    }
                ],
            )
            sched = client.get_schedule(sid)
            client.close_session(sid)
        assert [r["job_id"] for r in sched["records"]] == [1]

    def test_get_metrics_digest_matches_schedule(self, server):
        with server.client() as client:
            sid = client.open_session(scheduler="sjf")
            client.submit_jobs(sid, sorted_jobs("adversarial", 15, 1))
            metrics = client.get_metrics(sid)
            sched = client.get_schedule(sid)
            stats = client.session_stats(sid)
            client.close_session(sid)
        assert metrics["digest"] == sched["digest"]
        assert metrics["metrics"] == sched["metrics"]
        # The second query reused the memoized replay.
        assert stats["n_runs"] == 1
        assert stats["n_result_reuses"] >= 1

    def test_interleaved_sessions_equal_serial_batches(self, server):
        jobs_a = sorted_jobs("heterogeneous_mix", 24, 3)
        jobs_b = sorted_jobs("bursty_idle", 24, 9)
        with server.client() as client:
            sa = client.open_session(scheduler="fcfs", scheduler_seed=0)
            sb = client.open_session(scheduler="sjf", scheduler_seed=0)
            # Strict interleaving, with mid-stream queries on both.
            for i in range(0, 24, 8):
                client.submit_jobs(sa, jobs_a[i:i + 8])
                client.submit_jobs(sb, jobs_b[i:i + 8])
                client.get_schedule(sa)
                client.get_schedule(sb)
            da = client.get_schedule(sa)["digest"]
            db = client.get_schedule(sb)["digest"]
            client.close_session(sa)
            client.close_session(sb)
        assert da == batch_digest("heterogeneous_mix", 24, "fcfs", 3)
        assert db == batch_digest("bursty_idle", 24, "sjf", 9)


class TestCellCache:
    def test_repeat_request_hits_memory_not_simulation(self, tmp_path):
        store = tmp_path / "cells.jsonl"
        with EmbeddedServer(store_path=store, workers=1, cache_size=8) as srv:
            assert srv.server.address == str(srv.socket_path)
            with srv.wait_client() as client:
                r1 = client.run_cell(cell_config())
                r2 = client.run_cell(cell_config())
                stats = client.stats()
        assert r1["source"] == "simulated"
        assert r2["source"] == "memory"
        assert r1["run"] == r2["run"]
        cache = stats["cache"]
        assert cache["simulations"] == 1
        assert cache["hits_memory"] == 1
        assert cache["store_appends"] == 1

    def test_store_answers_across_daemon_restart(self, tmp_path):
        store = tmp_path / "cells.jsonl"
        with EmbeddedServer(store_path=store, workers=1) as srv:
            with srv.client() as client:
                first = client.run_cell(cell_config())
        assert first["source"] == "simulated"
        # A fresh daemon, same store: the cell must come back from the
        # persisted tier with zero simulations.
        with EmbeddedServer(store_path=store, workers=1) as srv:
            with srv.client() as client:
                again = client.run_cell(cell_config())
                stats = client.stats()
        assert again["source"] == "store"
        assert again["run"] == first["run"]
        assert stats["cache"]["simulations"] == 0

    def test_distinct_cells_simulate_independently(self, tmp_path):
        with EmbeddedServer(
            store_path=tmp_path / "cells.jsonl", workers=1
        ) as srv:
            with srv.client() as client:
                a = client.run_cell(cell_config(workload_seed=0))
                b = client.run_cell(cell_config(workload_seed=1))
                stats = client.stats()
        assert a["source"] == b["source"] == "simulated"
        assert a["run"] != b["run"]
        assert stats["cache"]["simulations"] == 2

    def test_malformed_cell_config_rejected(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.run_cell({"scenario": "adversarial"})
        assert excinfo.value.error_type == "bad_request"


class TestShutdownAndErrors:
    def test_graceful_shutdown_completes_inflight_request(self):
        with EmbeddedServer(workers=1) as srv:
            with srv.client() as client:
                sid = client.open_session(scheduler="fcfs")
                client.submit_jobs(
                    sid, sorted_jobs("heterogeneous_mix", 200, 0)
                )
                outcome = {}

                def query():
                    try:
                        outcome["schedule"] = client.get_schedule(sid)
                    except BaseException as exc:  # pragma: no cover
                        outcome["error"] = exc

                worker = threading.Thread(target=query)
                worker.start()
                time.sleep(0.05)
                with srv.client() as other:
                    other.shutdown()
                worker.join(timeout=30)
            assert "error" not in outcome, outcome.get("error")
            sched = outcome["schedule"]
            assert sched["digest"] == wire_digest(
                sched["records"],
                sched["decisions"],
                sched["preemptions"],
                sched["metrics"],
            )

    def test_requests_refused_while_closing(self):
        srv = EmbeddedServer(workers=1).start()
        try:
            with srv.client() as client:
                client.shutdown()
            # The daemon is now draining/stopped: either the socket is
            # gone or a late request is refused with a stable type.
            try:
                with srv.client(timeout=5.0) as late:
                    late.open_session(scheduler="fcfs")
            except (ServiceError, OSError, ConnectionError) as exc:
                if isinstance(exc, ServiceError):
                    assert exc.error_type == "service_closing"
            else:  # pragma: no cover - shutdown won the race
                pytest.fail("open_session accepted after shutdown")
        finally:
            srv.stop()

    def test_unknown_session_error(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.get_schedule("s999999")
        assert excinfo.value.error_type == "unknown_session"

    def test_closed_session_becomes_unknown(self, server):
        with server.client() as client:
            sid = client.open_session(scheduler="fcfs")
            client.close_session(sid)
            with pytest.raises(ServiceError) as excinfo:
                client.session_stats(sid)
        assert excinfo.value.error_type == "unknown_session"

    def test_streaming_contract_violation_is_session_error(self, server):
        with server.client() as client:
            sid = client.open_session(scheduler="fcfs")
            job = {
                "job_id": 1,
                "submit_time": 5.0,
                "duration": 1.0,
                "nodes": 1,
                "memory_gb": 1.0,
            }
            client.submit_jobs(sid, [job])
            with pytest.raises(ServiceError) as excinfo:
                client.submit_jobs(sid, [dict(job, job_id=2, submit_time=1.0)])
            assert excinfo.value.error_type == "session_error"
            # The rejected batch left the session untouched.
            assert client.session_stats(sid)["n_jobs"] == 1
            client.close_session(sid)

    def test_unknown_op_and_unknown_scheduler(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("no_such_op")
            assert excinfo.value.error_type == "bad_request"
            with pytest.raises(ServiceError):
                client.open_session(scheduler="no_such_scheduler")

    def test_ping_and_stats(self, server):
        with server.client() as client:
            assert client.ping()["protocol"] == 1
            stats = client.stats()
        assert stats["protocol"] == 1
        assert stats["closing"] is False
        assert "cache" in stats


class TestTcpAndCli:
    def test_cli_serve_over_tcp_round_trips(self, tmp_path, capsys):
        # The real CLI entry (`repro-sched serve`) on an ephemeral TCP
        # port, driven with the TCP flavor of the sync client. The
        # handler installs signal handlers only on the main thread, so
        # running it on a worker thread exercises the fallback path.
        from repro.experiments.cli import main
        from repro.service.client import wait_for_server

        store = tmp_path / "cells.jsonl"
        exit_code = {}

        def serve():
            exit_code["rc"] = main(
                [
                    "serve",
                    "--host",
                    "127.0.0.1",
                    "--store",
                    str(store),
                    "--workers",
                    "1",
                ]
            )

        daemon = threading.Thread(target=serve, daemon=True)
        daemon.start()
        # Ephemeral port: parse the advertised address from stdout.
        deadline = time.monotonic() + 15
        port = None
        while port is None and time.monotonic() < deadline:
            out = capsys.readouterr().out
            for line in out.splitlines():
                if "listening on 127.0.0.1:" in line:
                    port = int(line.rsplit(":", 1)[1])
            time.sleep(0.02)
        assert port is not None, "daemon never advertised its address"
        client = wait_for_server(host="127.0.0.1", port=port, timeout=15)
        with client:
            assert client.ping()["protocol"] == 1
            sid = client.open_session(scheduler="fcfs")
            client.submit_jobs(sid, sorted_jobs("adversarial", 10, 0))
            sched = client.get_schedule(sid)
            assert client.run_cell(cell_config())["source"] == "simulated"
            client.shutdown()
        daemon.join(timeout=30)
        assert exit_code.get("rc") == 0
        assert sched["digest"] == batch_digest("adversarial", 10, "fcfs", 0)
        assert store.exists()

    def test_serve_cli_rejects_port_without_host(self, tmp_path, capsys):
        from repro.experiments.cli import main

        sock = tmp_path / "d.sock"
        assert main(["serve", "--socket", str(sock), "--port", "9999"]) == 2


class TestEventStream:
    def test_subscriber_sees_lifecycle_events(self):
        srv = EmbeddedServer(workers=1).start()
        events = []
        try:
            sub = srv.client()

            def collect():
                for event in sub.events():
                    events.append(event)

            reader = threading.Thread(target=collect)
            reader.start()
            deadline = time.monotonic() + 10
            while not srv.server.service._subscribers:
                assert time.monotonic() < deadline, "subscriber not registered"
                time.sleep(0.01)
            with srv.client() as client:
                sid = client.open_session(scheduler="fcfs")
                client.submit_jobs(sid, sorted_jobs("adversarial", 10, 0))
                client.get_schedule(sid)
                client.close_session(sid)
                client.shutdown()
            reader.join(timeout=30)
            assert not reader.is_alive()
            sub.close()
        finally:
            srv.stop()
        names = [e["event"] for e in events]
        for expected in (
            "session_opened",
            "jobs_submitted",
            "schedule_served",
            "session_closed",
            "shutdown",
        ):
            assert expected in names
        served = next(e for e in events if e["event"] == "schedule_served")
        assert served["data"]["digest"] == batch_digest(
            "adversarial", 10, "fcfs", 0
        )
        assert names[-1] == "shutdown"
