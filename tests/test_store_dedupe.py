"""``store doctor --dedupe``: compact superseded duplicate-key lines.

The contract is conservative by design: compaction changes the bytes
on disk but never what :meth:`RunStore.load` resolves — each cell
keeps its winning (last-written) line verbatim, placed at the key's
first-appearance position. Superseded lines are dropped, not
quarantined (they are stale data, not corruption).
"""

import dataclasses

import pytest

from repro.experiments.cli import main
from repro.experiments.runner import run_single
from repro.experiments.store import RunStore, StoredRun


@pytest.fixture
def dup_store(tmp_path):
    """A store where the fcfs cell was written twice (the second write
    supersedes), interleaved with a distinct sjf cell."""
    store = RunStore(tmp_path / "runs.jsonl")
    fcfs = StoredRun.from_run(run_single("adversarial", 8, "fcfs"))
    sjf = StoredRun.from_run(run_single("adversarial", 8, "sjf"))
    stale = dataclasses.replace(
        fcfs, metrics={k: v + 1.0 for k, v in fcfs.metrics.items()}
    )
    store.append(stale)
    store.append(sjf)
    store.append(fcfs)  # supersedes `stale`
    return store


def lines_of(store: RunStore) -> list[str]:
    return [
        line
        for line in store.path.read_text().splitlines()
        if line.strip()
    ]


class TestDoctorDedupe:
    def test_load_is_unchanged_and_file_compacts(self, dup_store):
        before = [run.to_json() for run in dup_store.load()]
        winning_lines = lines_of(dup_store)[1:]  # sjf line, fresh fcfs line
        report = dup_store.doctor(dedupe=True)
        assert report.n_deduped == 1
        assert report.n_quarantined == 0
        assert report.clean  # superseded lines are not corruption
        after_lines = lines_of(dup_store)
        assert len(after_lines) == 2
        # Winning bytes survive verbatim, at first-appearance order:
        # the fcfs key appeared first, so its (fresh) line leads.
        assert after_lines == [winning_lines[1], winning_lines[0]]
        assert [run.to_json() for run in dup_store.load()] == before
        # No quarantine file for a dedupe-only repair.
        assert not dup_store.quarantine_path.exists()

    def test_dry_run_reports_without_writing(self, dup_store):
        raw = dup_store.path.read_text()
        report = dup_store.doctor(dry_run=True, dedupe=True)
        assert report.n_deduped == 1
        assert dup_store.path.read_text() == raw

    def test_without_dedupe_duplicates_survive(self, dup_store):
        report = dup_store.doctor()
        assert report.n_deduped == 0
        assert len(lines_of(dup_store)) == 3

    def test_dedupe_composes_with_corruption_repair(self, dup_store):
        with dup_store.path.open("a", encoding="utf-8") as fh:
            fh.write("{corrupt\n")
        before = [run.to_json() for run in dup_store.load(on_corrupt="quarantine")]
        report = dup_store.doctor(dedupe=True)
        assert report.n_deduped == 1
        assert report.n_quarantined == 1
        assert not report.clean
        assert dup_store.quarantine_path.exists()
        assert [run.to_json() for run in dup_store.load()] == before

    def test_summary_mentions_dedupe(self, dup_store):
        report = dup_store.doctor(dedupe=True)
        assert "dedup" in report.summary().lower()


class TestDoctorDedupeCLI:
    def test_cli_dedupe_compacts_and_exits_zero(self, dup_store, capsys):
        rc = main(["store", "doctor", str(dup_store.path), "--dedupe"])
        assert rc == 0
        assert "dedup" in capsys.readouterr().out.lower()
        assert len(lines_of(dup_store)) == 2

    def test_cli_without_dedupe_leaves_duplicates(self, dup_store, capsys):
        rc = main(["store", "doctor", str(dup_store.path)])
        assert rc == 0
        assert len(lines_of(dup_store)) == 3
