"""Streaming-append and fork semantics of ``ArrayCalendar`` (PR 8).

The service's session engine grows one sealed calendar per session via
:meth:`~repro.sim.events.ArrayCalendar.extend_static` and replays each
query over a :meth:`~repro.sim.events.ArrayCalendar.fork`. Everything
the service promises about byte-identity reduces to two properties
pinned here:

1. A calendar grown by any sequence of extends pops the identical
   ``(time, kind, payload)`` stream as one built in a single pre-seal
   batch — including cross-batch ties at equal ``(time, kind)``.
2. A fork is fully independent: consuming it never moves the original.
"""

import pytest

from repro.sim.events import ArrayCalendar, EventKind


def drain(cal: ArrayCalendar) -> list[tuple[float, int, int]]:
    out = []
    while cal:
        out.append(cal.pop())
    return out


def batch_built(events) -> ArrayCalendar:
    cal = ArrayCalendar()
    for t, k, p in events:
        cal.add_static(t, k, p)
    cal.seal()
    return cal


class TestExtendStatic:
    def test_chunked_extends_equal_single_batch_build(self):
        # Ties at equal (time, kind) across chunk boundaries are the
        # interesting case: seq must continue globally so existing
        # events keep winning the tie.
        events = [
            (0.0, EventKind.ARRIVAL, 0),
            (5.0, EventKind.ARRIVAL, 1),
            (5.0, EventKind.ARRIVAL, 2),
            (5.0, EventKind.NODE_FAILURE, 3),
            (9.0, EventKind.ARRIVAL, 4),
            (9.0, EventKind.ARRIVAL, 5),
            (12.0, EventKind.ARRIVAL, 6),
        ]
        reference = drain(batch_built(events))
        for chunk in (1, 2, 3):
            grown = batch_built(events[:chunk])
            for i in range(chunk, len(events), chunk):
                grown.extend_static(events[i:i + chunk])
            assert drain(grown) == reference

    def test_extend_from_empty_sealed_calendar(self):
        # The session path: seal an empty lane, then only ever extend.
        events = [(float(i), EventKind.ARRIVAL, i) for i in range(6)]
        cal = ArrayCalendar()
        cal.seal()
        cal.extend_static(events[:3])
        cal.extend_static(events[3:])
        assert drain(cal) == drain(batch_built(events))

    def test_extend_interleaves_with_unconsumed_tail(self):
        cal = batch_built(
            [(t, EventKind.ARRIVAL, i) for i, t in enumerate((0.0, 4.0, 8.0))]
        )
        assert cal.pop()[0] == 0.0
        # New events straddle the remaining static tail.
        cal.extend_static(
            [(2.0, EventKind.ARRIVAL, 10), (6.0, EventKind.ARRIVAL, 11)]
        )
        assert [p for _, _, p in drain(cal)] == [10, 1, 11, 2]

    def test_extend_into_consumed_past_raises(self):
        cal = batch_built([(10.0, EventKind.ARRIVAL, 0)])
        cal.pop()
        with pytest.raises(ValueError, match="consumed past"):
            cal.extend_static([(3.0, EventKind.ARRIVAL, 1)])
        # Same time but a smaller kind also sorts before the popped
        # event, so it is equally rejected.
        with pytest.raises(ValueError, match="consumed past"):
            cal.extend_static([(10.0, EventKind.COMPLETION, 1)])
        # At-or-after the floor is fine.
        cal.extend_static([(10.0, EventKind.ARRIVAL, 2)])
        assert drain(cal) == [(10.0, int(EventKind.ARRIVAL), 2)]

    def test_rejected_batch_is_atomic(self):
        # A batch whose *second* event violates the floor must not
        # leak its first event into the lane.
        cal = batch_built([(10.0, EventKind.ARRIVAL, 0)])
        cal.pop()
        with pytest.raises(ValueError):
            cal.extend_static(
                [(11.0, EventKind.ARRIVAL, 1), (1.0, EventKind.ARRIVAL, 2)]
            )
        assert len(cal) == 0

    def test_extend_requires_sealed(self):
        cal = ArrayCalendar()
        with pytest.raises(RuntimeError, match="seal"):
            cal.extend_static([(1.0, EventKind.ARRIVAL, 0)])

    def test_extend_validates_times(self):
        cal = ArrayCalendar()
        cal.seal()
        with pytest.raises(ValueError):
            cal.extend_static([(-1.0, EventKind.ARRIVAL, 0)])
        with pytest.raises(ValueError):
            cal.extend_static([(float("nan"), EventKind.ARRIVAL, 0)])

    def test_empty_extend_is_a_noop(self):
        cal = batch_built([(1.0, EventKind.ARRIVAL, 0)])
        cal.extend_static([])
        assert len(cal) == 1

    def test_len_counts_static_tail_and_heap(self):
        cal = batch_built([(1.0, EventKind.ARRIVAL, 0)])
        cal.push(2.0, EventKind.COMPLETION, 7)
        assert len(cal) == 2
        cal.extend_static([(3.0, EventKind.ARRIVAL, 1)])
        assert len(cal) == 3
        cal.pop()
        assert len(cal) == 2


class TestFork:
    def test_fork_requires_sealed(self):
        with pytest.raises(RuntimeError, match="seal"):
            ArrayCalendar().fork()

    def test_fork_is_independent(self):
        events = [(float(i), EventKind.ARRIVAL, i) for i in range(5)]
        cal = batch_built(events)
        cal.pop()
        fork = cal.fork()
        # Consuming and growing the fork never moves the original.
        fork.extend_static([(9.0, EventKind.ARRIVAL, 99)])
        drained = drain(fork)
        assert [p for _, _, p in drained] == [1, 2, 3, 4, 99]
        assert len(cal) == 4
        assert [p for _, _, p in drain(cal)] == [1, 2, 3, 4]

    def test_fork_copies_dynamic_lane(self):
        cal = batch_built([(1.0, EventKind.ARRIVAL, 0)])
        cal.push(0.5, EventKind.COMPLETION, 42)
        fork = cal.fork()
        assert drain(fork) == drain(cal)

    def test_fork_inherits_floor(self):
        # The consumed-past guard survives the fork: a fork of a
        # partially-consumed calendar refuses the same extends.
        cal = batch_built([(10.0, EventKind.ARRIVAL, 0)])
        cal.pop()
        fork = cal.fork()
        with pytest.raises(ValueError, match="consumed past"):
            fork.extend_static([(1.0, EventKind.ARRIVAL, 1)])

    def test_repeated_forks_replay_identically(self):
        events = [(float(i % 3), EventKind.ARRIVAL, i) for i in range(8)]
        cal = batch_built(sorted(events))
        first = drain(cal.fork())
        second = drain(cal.fork())
        assert first == second == drain(cal)
