"""Tests for walltime enforcement and workload transforms."""

import pytest

from repro.schedulers.fcfs import EasyBackfillScheduler, FCFSScheduler
from repro.sim.cluster import ResourcePool
from repro.sim.simulator import HPCSimulator
from repro.workloads.generator import generate_workload
from repro.workloads.transforms import (
    with_all_at_zero,
    with_noisy_walltimes,
    with_scaled_arrivals,
)

from tests.conftest import make_job


def run(jobs, scheduler=None, *, enforce=False, nodes=8, memory=64.0):
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=scheduler or FCFSScheduler(),
        cluster=ResourcePool(total_nodes=nodes, total_memory_gb=memory),
        enforce_walltime=enforce,
    )
    result = sim.run()
    result.verify_capacity()
    return result


class TestEnforcement:
    def test_overrunning_job_killed_at_walltime(self):
        jobs = [make_job(1, duration=100.0, walltime=60.0)]
        result = run(jobs, enforce=True)
        rec = result.record_for(1)
        assert rec.end_time == 60.0
        assert rec.killed

    def test_within_walltime_unaffected(self):
        jobs = [make_job(1, duration=50.0, walltime=60.0)]
        result = run(jobs, enforce=True)
        rec = result.record_for(1)
        assert rec.end_time == 50.0
        assert not rec.killed

    def test_disabled_by_default(self):
        jobs = [make_job(1, duration=100.0, walltime=60.0)]
        result = run(jobs, enforce=False)
        assert result.record_for(1).end_time == 100.0
        assert not result.record_for(1).killed

    def test_kill_frees_resources_early(self):
        jobs = [
            make_job(1, duration=1000.0, walltime=50.0, nodes=8),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
        ]
        result = run(jobs, enforce=True)
        assert result.record_for(2).start_time == 50.0

    def test_arrays_use_actual_runtime(self):
        jobs = [make_job(1, duration=100.0, walltime=60.0)]
        arrays = run(jobs, enforce=True).to_arrays()
        assert arrays["duration"][0] == 60.0


class TestNoisyWalltimes:
    def test_padded_estimates(self):
        jobs = generate_workload("heterogeneous_mix", 30, seed=0)
        noisy = with_noisy_walltimes(jobs, seed=1)
        for orig, new in zip(jobs, noisy):
            assert new.walltime >= orig.duration
            assert new.walltime % 900.0 == pytest.approx(0.0)
            assert new.duration == orig.duration

    def test_underestimates_when_requested(self):
        jobs = generate_workload("heterogeneous_mix", 50, seed=0)
        noisy = with_noisy_walltimes(jobs, seed=1, underestimate_prob=1.0)
        assert all(j.walltime < j.duration for j in noisy)

    def test_deterministic(self):
        jobs = generate_workload("bursty_idle", 20, seed=0)
        assert with_noisy_walltimes(jobs, seed=7) == with_noisy_walltimes(
            jobs, seed=7
        )

    def test_validation(self):
        jobs = generate_workload("adversarial", 5, seed=0)
        with pytest.raises(ValueError):
            with_noisy_walltimes(jobs, pad_range=(0.5, 2.0))
        with pytest.raises(ValueError):
            with_noisy_walltimes(jobs, underestimate_prob=2.0)
        with pytest.raises(ValueError):
            with_noisy_walltimes(jobs, quantize_s=-1.0)

    def test_easy_backfill_stays_safe_with_padded_estimates(self):
        """Conservative (padded) estimates shrink backfill windows but
        never break the head-job reservation guarantee."""
        jobs = generate_workload("heterogeneous_mix", 40, seed=3)
        noisy = with_noisy_walltimes(jobs, seed=4)
        result = run(
            noisy, EasyBackfillScheduler(), nodes=256, memory=2048.0
        )
        assert len(result.records) == 40


class TestArrivalScaling:
    def test_compression_raises_contention(self):
        from repro.metrics.objectives import compute_metrics

        jobs = generate_workload("heterogeneous_mix", 40, seed=2)
        compressed = with_scaled_arrivals(jobs, 0.25)
        base_wait = compute_metrics(
            run(jobs, nodes=256, memory=2048.0)
        )["avg_wait_time"]
        hot_wait = compute_metrics(
            run(compressed, nodes=256, memory=2048.0)
        )["avg_wait_time"]
        assert hot_wait >= base_wait

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            with_scaled_arrivals([make_job(1)], 0.0)

    def test_all_at_zero(self):
        jobs = generate_workload("bursty_idle", 10, seed=0)
        flat = with_all_at_zero(jobs)
        assert all(j.submit_time == 0.0 for j in flat)
        assert {j.job_id for j in flat} == {j.job_id for j in jobs}
