"""Tests for the genetic-algorithm list scheduler."""

import numpy as np
import pytest

from repro.metrics.objectives import compute_metrics
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.genetic import (
    GeneticConfig,
    GeneticOptimizer,
    order_crossover,
    prefix_crossover,
)
from repro.workloads.generator import generate_workload

from tests.conftest import make_job, run_sim


class TestOrderCrossover:
    def test_child_is_permutation(self):
        rng = np.random.default_rng(0)
        a = [1, 2, 3, 4, 5, 6]
        b = [6, 5, 4, 3, 2, 1]
        for _ in range(20):
            child = order_crossover(a, b, rng)
            assert sorted(child) == sorted(a)

    def test_short_parents(self):
        rng = np.random.default_rng(0)
        assert order_crossover([1], [1], rng) == [1]

    def test_slice_preserved_from_parent_a(self):
        rng = np.random.default_rng(3)
        a = list(range(1, 9))
        b = list(reversed(a))
        child = order_crossover(a, b, rng)
        # Some contiguous slice of the child matches parent A exactly.
        found = any(
            child[i:j] == a[i:j] and j - i >= 2
            for i in range(len(a))
            for j in range(i + 2, len(a) + 1)
        )
        assert found


class TestPrefixCrossover:
    def test_child_is_permutation_sharing_parent_prefix(self):
        rng = np.random.default_rng(0)
        a = [1, 2, 3, 4, 5, 6, 7, 8]
        b = list(reversed(a))
        for _ in range(30):
            child, cut = prefix_crossover(a, b, rng)
            assert sorted(child) == sorted(a)
            assert 1 <= cut < len(a)
            assert child[:cut] == a[:cut]

    def test_suffix_follows_parent_b_relative_order(self):
        rng = np.random.default_rng(7)
        a = [1, 2, 3, 4, 5, 6]
        b = [6, 4, 2, 5, 3, 1]
        child, cut = prefix_crossover(a, b, rng)
        expected_suffix = [g for g in b if g not in set(a[:cut])]
        assert child[cut:] == expected_suffix

    def test_short_parents(self):
        rng = np.random.default_rng(0)
        child, cut = prefix_crossover([1], [1], rng)
        assert child == [1]
        assert cut == 1


class TestConfig:
    def test_defaults_valid(self):
        GeneticConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneticConfig(population=1)
        with pytest.raises(ValueError):
            GeneticConfig(population=4, elite=4)
        with pytest.raises(ValueError):
            GeneticConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GeneticConfig(mutation_rate=-0.1)


class TestScheduling:
    def test_schedules_everything(self):
        jobs = generate_workload("heterogeneous_mix", 20, seed=1)
        result = run_sim(jobs, GeneticOptimizer(seed=0))
        assert len(result.records) == 20
        result.verify_capacity()

    def test_deterministic_under_seed(self):
        jobs = generate_workload("heterogeneous_mix", 15, seed=2)
        a = run_sim(jobs, GeneticOptimizer(seed=4))
        b = run_sim(jobs, GeneticOptimizer(seed=4))
        assert {r.job.job_id: r.start_time for r in a.records} == {
            r.job.job_id: r.start_time for r in b.records
        }

    def test_improves_pathological_fcfs_order(self):
        # Same crafted instance the annealer test uses: optimal pairing
        # halves... cuts makespan from 300 to 200.
        jobs = [
            make_job(1, duration=100.0, nodes=5),
            make_job(2, duration=100.0, nodes=4),
            make_job(3, duration=100.0, nodes=3),
            make_job(4, duration=100.0, nodes=4),
        ]
        fcfs = compute_metrics(run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0))
        ga = compute_metrics(
            run_sim(jobs, GeneticOptimizer(seed=0), nodes=8, memory=64.0)
        )
        assert fcfs["makespan"] == pytest.approx(300.0)
        assert ga["makespan"] == pytest.approx(200.0)

    def test_generations_recorded(self):
        jobs = generate_workload("heterogeneous_mix", 10, seed=0)
        sched = GeneticOptimizer(seed=0)
        result = run_sim(jobs, sched)
        assert result.extras["generations"] > 0

    def test_prefix_and_legacy_modes_both_deterministic(self):
        jobs = generate_workload("heterogeneous_mix", 15, seed=2)
        for cfg in (
            GeneticConfig(),
            GeneticConfig(prefix_crossover=False),
        ):
            a = run_sim(jobs, GeneticOptimizer(seed=4, config=cfg))
            b = run_sim(jobs, GeneticOptimizer(seed=4, config=cfg))
            assert {r.job.job_id: r.start_time for r in a.records} == {
                r.job.job_id: r.start_time for r in b.records
            }

    def test_prefix_mode_reports_pack_stats(self):
        # Zero arrivals -> one planning event, so the cold-pack bound
        # below is exact (population x (generations + 1) evaluations).
        jobs = generate_workload(
            "heterogeneous_mix", 20, seed=1, arrival_mode="zero"
        )
        sched = GeneticOptimizer(seed=0)
        result = run_sim(jobs, sched)
        assert result.extras["prefix_crossover"] is True
        stats = result.extras["pack_stats"]
        assert stats["jobs_packed"] > 0
        assert stats["incumbents_saved"] > 0
        # The point of the restructure: children re-pack suffixes, so
        # total packed jobs undercut one cold full pack per evaluation
        # (population x (generations + 1) x queue).
        cfg = sched.config
        cold = cfg.population * (cfg.generations + 1) * 20
        assert stats["jobs_packed"] < cold

    def test_legacy_mode_omits_pack_stats(self):
        jobs = generate_workload("heterogeneous_mix", 10, seed=0)
        result = run_sim(
            jobs,
            GeneticOptimizer(
                seed=0, config=GeneticConfig(prefix_crossover=False)
            ),
        )
        assert result.extras["prefix_crossover"] is False
        assert "pack_stats" not in result.extras

    def test_comparable_to_annealer_on_static_instance(self):
        from repro.schedulers.optimizer import AnnealingOptimizer

        jobs = generate_workload(
            "heterogeneous_mix", 30, seed=3, arrival_mode="zero"
        )
        ga = compute_metrics(run_sim(jobs, GeneticOptimizer(seed=0)))
        sa = compute_metrics(run_sim(jobs, AnnealingOptimizer(seed=0)))
        # Same packing model + objective: results land in the same band.
        assert ga["makespan"] <= sa["makespan"] * 1.15
