"""Unit tests for the reliability objectives."""

import pytest

from repro.metrics.disruption import (
    BLAST_METRIC_NAMES,
    CORE_DISRUPTION_METRIC_NAMES,
    DISRUPTION_METRIC_NAMES,
    blast_radius_metrics,
    disruption_metrics,
    domain_kill_counts,
    goodput_fraction,
    goodput_node_hours,
    largest_event_loss_node_hours,
    mean_requeue_latency,
    wasted_node_hours,
    work_lost_per_kill,
)
from repro.sim.disruptions import PreemptionRecord
from repro.sim.job import Job
from repro.sim.schedule import JobRecord, ScheduleResult


def make_result(records=(), preemptions=(), disrupted=True):
    return ScheduleResult(
        records=list(records),
        decisions=[],
        total_nodes=16,
        total_memory_gb=128.0,
        preemptions=list(preemptions),
        disrupted=disrupted,
    )


def job(job_id=1, nodes=4, duration=3600.0):
    return Job(
        job_id=job_id, submit_time=0.0, duration=duration,
        nodes=nodes, memory_gb=8.0,
    )


def preemption(job_id=1, nodes=4, start=0.0, time=1800.0, reason="failure",
               saved=0.0, restart=None, domain=None):
    lost = (time - start) - saved
    return PreemptionRecord(
        job_id=job_id, nodes=nodes, start_time=start, time=time,
        reason=reason, work_saved=saved, work_lost=lost,
        restart_time=restart, domain=domain,
    )


class TestGoodputAndWaste:
    def test_clean_run_is_all_goodput(self):
        j = job(duration=3600.0, nodes=4)
        result = make_result(records=[JobRecord(j, 0.0, 3600.0)])
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(0.0)
        assert goodput_fraction(result) == pytest.approx(1.0)

    def test_resubmit_kill_wastes_elapsed_work(self):
        j = job(duration=3600.0, nodes=4)
        # Killed at 1800s with nothing saved, reran fully 1800→5400.
        result = make_result(
            records=[JobRecord(j, 1800.0, 5400.0)],
            preemptions=[preemption(saved=0.0, restart=1800.0)],
        )
        # Useful: 4 nodes × 3600 s = 4 nh. Wasted: 4 × 1800 s = 2 nh.
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(2.0)
        assert goodput_fraction(result) == pytest.approx(4.0 / 6.0)

    def test_checkpoint_kill_wastes_only_tail(self):
        j = job(duration=3600.0, nodes=4)
        # Killed at 1800s, checkpoint saved 1500s; final attempt runs
        # the remaining 2100 s.
        result = make_result(
            records=[JobRecord(j, 1800.0, 1800.0 + 2100.0)],
            preemptions=[preemption(saved=1500.0, restart=1800.0)],
        )
        # Useful = 4 × (2100 + 1500) = 4 nh; wasted = 4 × 300 s.
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(4 * 300 / 3600)

    def test_empty_result_fraction_is_one(self):
        assert goodput_fraction(make_result()) == 1.0


class TestKillAccounting:
    def test_voluntary_preempts_excluded_from_kill_stats(self):
        result = make_result(
            preemptions=[
                preemption(reason="failure", saved=0.0),
                preemption(reason="preempt", saved=1800.0),
            ]
        )
        metrics = disruption_metrics(result)
        assert metrics["n_kills"] == 1.0
        # Only the failure's loss counts per kill.
        assert work_lost_per_kill(result) == pytest.approx(4 * 1800.0)

    def test_no_kills_zero(self):
        assert work_lost_per_kill(make_result()) == 0.0
        assert disruption_metrics(make_result())["n_kills"] == 0.0


class TestRequeueLatency:
    def test_mean_over_restarted_victims(self):
        result = make_result(
            preemptions=[
                preemption(time=1000.0, start=0.0, restart=1200.0),
                preemption(time=2000.0, start=1500.0, restart=2600.0),
            ]
        )
        assert mean_requeue_latency(result) == pytest.approx(
            (200.0 + 600.0) / 2
        )

    def test_unrestarted_victims_skipped(self):
        result = make_result(
            preemptions=[preemption(restart=None)]
        )
        assert mean_requeue_latency(result) == 0.0

    def test_voluntary_preempts_excluded_from_latency(self):
        # A policy padding itself with instant voluntary suspensions
        # must not dilute the involuntary-recovery latency.
        result = make_result(
            preemptions=[
                preemption(time=1000.0, start=0.0, restart=1500.0,
                           reason="failure"),
                preemption(time=1000.0, start=0.0, restart=1000.0,
                           reason="preempt", saved=1000.0),
            ]
        )
        assert mean_requeue_latency(result) == pytest.approx(500.0)


class TestBlastRadius:
    def test_one_event_groups_same_instant_same_domain_kills(self):
        # Two jobs killed by one rack shock = one event; a later
        # independent node failure is a separate, smaller event.
        result = make_result(
            preemptions=[
                preemption(job_id=1, time=1800.0, domain="rack2"),
                preemption(job_id=2, time=1800.0, domain="rack2"),
                preemption(job_id=3, time=5000.0, start=4600.0),
            ]
        )
        # Shock event loses 2 × 4 nodes × 1800 s; the node failure
        # loses 4 × 400 s.
        assert largest_event_loss_node_hours(result) == pytest.approx(
            2 * 4 * 1800.0 / 3600.0
        )

    def test_same_instant_different_domains_are_separate_events(self):
        result = make_result(
            preemptions=[
                preemption(job_id=1, time=1800.0, domain="rack0"),
                preemption(job_id=2, time=1800.0, domain="rack1"),
            ]
        )
        assert largest_event_loss_node_hours(result) == pytest.approx(
            4 * 1800.0 / 3600.0
        )

    def test_voluntary_preempts_never_count(self):
        result = make_result(
            preemptions=[
                preemption(reason="preempt", saved=1800.0, domain="rack0"),
            ]
        )
        assert largest_event_loss_node_hours(result) == 0.0
        assert domain_kill_counts(result) == {}

    def test_domain_kill_counts_sorted_by_label(self):
        result = make_result(
            preemptions=[
                preemption(job_id=1, domain="rack3"),
                preemption(job_id=2, domain="rack1"),
                preemption(job_id=3, domain="rack3"),
                preemption(job_id=4),  # independent node failure
            ]
        )
        counts = domain_kill_counts(result)
        assert counts == {"rack1": 1, "rack3": 2}
        assert list(counts) == ["rack1", "rack3"]
        metrics = blast_radius_metrics(result)
        assert metrics["n_domain_kills"] == 3.0
        assert metrics["domains_hit"] == 2.0


class TestIntegrationWithComputeMetrics:
    def test_disrupted_run_reports_reliability_columns(self):
        from repro.metrics.objectives import compute_metrics

        j = job()
        result = make_result(
            records=[JobRecord(j, 0.0, 3600.0)], disrupted=True
        )
        values = compute_metrics(result).as_dict()
        for name in CORE_DISRUPTION_METRIC_NAMES:
            assert name in values
        # Blast-radius columns only appear for domain-event traces.
        for name in BLAST_METRIC_NAMES:
            assert name not in values

    def test_domain_event_run_reports_blast_columns(self):
        from repro.metrics.objectives import compute_metrics

        j = job()
        result = make_result(
            records=[JobRecord(j, 0.0, 3600.0)], disrupted=True
        )
        result.extras["domain_events"] = 2
        values = compute_metrics(result).as_dict()
        for name in DISRUPTION_METRIC_NAMES:
            assert name in values

    def test_names_match_module_functions(self):
        result = make_result()
        assert set(disruption_metrics(result)) == set(
            CORE_DISRUPTION_METRIC_NAMES
        )
        result.extras["domain_events"] = 1
        assert set(disruption_metrics(result)) == set(
            DISRUPTION_METRIC_NAMES
        )
        assert set(DISRUPTION_METRIC_NAMES) == (
            set(CORE_DISRUPTION_METRIC_NAMES) | set(BLAST_METRIC_NAMES)
        )
