"""Unit tests for the reliability objectives."""

import pytest

from repro.metrics.disruption import (
    DISRUPTION_METRIC_NAMES,
    disruption_metrics,
    goodput_fraction,
    goodput_node_hours,
    mean_requeue_latency,
    wasted_node_hours,
    work_lost_per_kill,
)
from repro.sim.disruptions import PreemptionRecord
from repro.sim.job import Job
from repro.sim.schedule import JobRecord, ScheduleResult


def make_result(records=(), preemptions=(), disrupted=True):
    return ScheduleResult(
        records=list(records),
        decisions=[],
        total_nodes=16,
        total_memory_gb=128.0,
        preemptions=list(preemptions),
        disrupted=disrupted,
    )


def job(job_id=1, nodes=4, duration=3600.0):
    return Job(
        job_id=job_id, submit_time=0.0, duration=duration,
        nodes=nodes, memory_gb=8.0,
    )


def preemption(job_id=1, nodes=4, start=0.0, time=1800.0, reason="failure",
               saved=0.0, restart=None):
    lost = (time - start) - saved
    return PreemptionRecord(
        job_id=job_id, nodes=nodes, start_time=start, time=time,
        reason=reason, work_saved=saved, work_lost=lost,
        restart_time=restart,
    )


class TestGoodputAndWaste:
    def test_clean_run_is_all_goodput(self):
        j = job(duration=3600.0, nodes=4)
        result = make_result(records=[JobRecord(j, 0.0, 3600.0)])
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(0.0)
        assert goodput_fraction(result) == pytest.approx(1.0)

    def test_resubmit_kill_wastes_elapsed_work(self):
        j = job(duration=3600.0, nodes=4)
        # Killed at 1800s with nothing saved, reran fully 1800→5400.
        result = make_result(
            records=[JobRecord(j, 1800.0, 5400.0)],
            preemptions=[preemption(saved=0.0, restart=1800.0)],
        )
        # Useful: 4 nodes × 3600 s = 4 nh. Wasted: 4 × 1800 s = 2 nh.
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(2.0)
        assert goodput_fraction(result) == pytest.approx(4.0 / 6.0)

    def test_checkpoint_kill_wastes_only_tail(self):
        j = job(duration=3600.0, nodes=4)
        # Killed at 1800s, checkpoint saved 1500s; final attempt runs
        # the remaining 2100 s.
        result = make_result(
            records=[JobRecord(j, 1800.0, 1800.0 + 2100.0)],
            preemptions=[preemption(saved=1500.0, restart=1800.0)],
        )
        # Useful = 4 × (2100 + 1500) = 4 nh; wasted = 4 × 300 s.
        assert goodput_node_hours(result) == pytest.approx(4.0)
        assert wasted_node_hours(result) == pytest.approx(4 * 300 / 3600)

    def test_empty_result_fraction_is_one(self):
        assert goodput_fraction(make_result()) == 1.0


class TestKillAccounting:
    def test_voluntary_preempts_excluded_from_kill_stats(self):
        result = make_result(
            preemptions=[
                preemption(reason="failure", saved=0.0),
                preemption(reason="preempt", saved=1800.0),
            ]
        )
        metrics = disruption_metrics(result)
        assert metrics["n_kills"] == 1.0
        # Only the failure's loss counts per kill.
        assert work_lost_per_kill(result) == pytest.approx(4 * 1800.0)

    def test_no_kills_zero(self):
        assert work_lost_per_kill(make_result()) == 0.0
        assert disruption_metrics(make_result())["n_kills"] == 0.0


class TestRequeueLatency:
    def test_mean_over_restarted_victims(self):
        result = make_result(
            preemptions=[
                preemption(time=1000.0, start=0.0, restart=1200.0),
                preemption(time=2000.0, start=1500.0, restart=2600.0),
            ]
        )
        assert mean_requeue_latency(result) == pytest.approx(
            (200.0 + 600.0) / 2
        )

    def test_unrestarted_victims_skipped(self):
        result = make_result(
            preemptions=[preemption(restart=None)]
        )
        assert mean_requeue_latency(result) == 0.0

    def test_voluntary_preempts_excluded_from_latency(self):
        # A policy padding itself with instant voluntary suspensions
        # must not dilute the involuntary-recovery latency.
        result = make_result(
            preemptions=[
                preemption(time=1000.0, start=0.0, restart=1500.0,
                           reason="failure"),
                preemption(time=1000.0, start=0.0, restart=1000.0,
                           reason="preempt", saved=1000.0),
            ]
        )
        assert mean_requeue_latency(result) == pytest.approx(500.0)


class TestIntegrationWithComputeMetrics:
    def test_disrupted_run_reports_reliability_columns(self):
        from repro.metrics.objectives import compute_metrics

        j = job()
        result = make_result(
            records=[JobRecord(j, 0.0, 3600.0)], disrupted=True
        )
        values = compute_metrics(result).as_dict()
        for name in DISRUPTION_METRIC_NAMES:
            assert name in values

    def test_names_match_module_functions(self):
        result = make_result()
        assert set(disruption_metrics(result)) == set(
            DISRUPTION_METRIC_NAMES
        )
