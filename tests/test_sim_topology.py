"""Unit tests for the cluster topology layer."""

import pickle

import pytest

from repro.sim.cluster import NodeLevelCluster, ResourcePool
from repro.sim.job import Job
from repro.sim.topology import (
    ClusterTopology,
    topology_signature,
)


def topo(n=256, rack=32, per_switch=4):
    return ClusterTopology(
        n_nodes=n, rack_size=rack, racks_per_switch=per_switch
    )


class TestShape:
    def test_counts(self):
        t = topo()
        assert t.n_racks == 8
        assert t.n_switches == 2
        assert not t.is_flat

    def test_ragged_last_rack(self):
        t = ClusterTopology(n_nodes=100, rack_size=32)
        assert t.n_racks == 4
        assert t.rack_nodes(3) == range(96, 100)

    def test_flat_constructor(self):
        t = ClusterTopology.flat(256)
        assert t.is_flat
        assert t.n_racks == 1
        assert t.n_switches == 1
        assert t.rack_nodes(0) == range(0, 256)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=0, rack_size=1)
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=16, rack_size=0)
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=16, rack_size=32)
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=16, rack_size=4, racks_per_switch=0)


class TestMembership:
    def test_rack_of_is_contiguous_blocks(self):
        t = topo()
        assert t.rack_of(0) == 0
        assert t.rack_of(31) == 0
        assert t.rack_of(32) == 1
        assert t.rack_of(255) == 7
        with pytest.raises(IndexError):
            t.rack_of(256)
        with pytest.raises(IndexError):
            t.rack_of(-1)

    def test_switch_of_groups_racks(self):
        t = topo()
        assert t.switch_of(0) == 0
        assert t.switch_of(127) == 0
        assert t.switch_of(128) == 1
        assert t.switch_nodes(1) == range(128, 256)

    def test_domain_levels(self):
        t = topo()
        assert t.n_domains("rack") == 8
        assert t.n_domains("switch") == 2
        assert t.domain_nodes("rack", 2) == range(64, 96)
        assert t.domain_nodes("switch", 0) == range(0, 128)
        with pytest.raises(ValueError):
            t.n_domains("pdu")

    def test_domain_labels_round_trip(self):
        t = topo()
        assert t.domain_label("rack", 3) == "rack3"
        assert t.domain_range("rack3") == t.rack_nodes(3)
        assert t.domain_range("switch1") == t.switch_nodes(1)
        with pytest.raises(ValueError):
            t.domain_range("pdu7")
        with pytest.raises(ValueError):
            t.domain_range("rack")


class TestIdentity:
    def test_signatures(self):
        assert topology_signature(None) == "flat"
        assert ClusterTopology.flat(256).signature() == "flat"
        assert ClusterTopology(256, 32).signature() == "rack32"
        assert topo().signature() == "rack32x4"

    def test_hashable_and_picklable(self):
        t = topo()
        assert hash(t) == hash(topo())
        assert pickle.loads(pickle.dumps(t)) == t


class TestClusterIntegration:
    def test_default_clusters_get_flat_topology(self):
        assert ResourcePool().topology.is_flat
        assert NodeLevelCluster().topology.is_flat

    def test_mismatched_topology_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(total_nodes=128, topology=topo(n=256))
        with pytest.raises(ValueError):
            NodeLevelCluster(node_count=128, topology=topo(n=256))

    def test_pool_domain_free_nodes_tracks_slots(self):
        pool = ResourcePool(total_nodes=256, topology=topo())
        assert pool.domain_free_nodes() == (32,) * 8
        pool.allocate(Job(job_id=1, submit_time=0.0, duration=10.0,
                          nodes=48, memory_gb=64.0))
        # Slot model: busy region [0, 48) covers rack0 and half rack1.
        assert pool.domain_free_nodes() == (0, 16, 32, 32, 32, 32, 32, 32)
        assert sum(pool.domain_free_nodes()) == pool.free_nodes

    def test_node_level_domain_free_nodes_exact(self):
        cluster = NodeLevelCluster(node_count=256, topology=topo())
        free = cluster.domain_free_nodes()
        assert free == (32,) * 8
        cluster.allocate(Job(job_id=1, submit_time=0.0, duration=10.0,
                             nodes=40, memory_gb=40.0))
        assert sum(cluster.domain_free_nodes()) == cluster.free_nodes

    def test_spread_placement_balances_racks(self):
        cluster = NodeLevelCluster(node_count=256, topology=topo())

        def job(jid, nodes=16):
            return Job(job_id=jid, submit_time=0.0, duration=10.0,
                       nodes=nodes, memory_gb=float(nodes))

        cluster.allocate(job(1))
        cluster.allocate(job(2))
        racks = {
            int(cluster.placement_of(jid)[0]) // 32 for jid in (1, 2)
        }
        # Spread: the second job lands in a different (fuller-free)
        # rack instead of first-fitting next to the first.
        assert len(racks) == 2

    def test_flat_cluster_places_like_legacy_first_fit(self):
        flat = NodeLevelCluster(node_count=256)
        legacy_expected = list(range(16))
        flat.allocate(Job(job_id=1, submit_time=0.0, duration=10.0,
                          nodes=16, memory_gb=16.0))
        assert list(flat.placement_of(1)) == legacy_expected

    def test_wide_job_falls_back_to_global_first_fit(self):
        cluster = NodeLevelCluster(node_count=256, topology=topo())
        cluster.allocate(Job(job_id=1, submit_time=0.0, duration=10.0,
                             nodes=64, memory_gb=64.0))
        assert list(cluster.placement_of(1)) == list(range(64))

    def test_domain_scoped_drain_takes_rack_nodes(self):
        cluster = NodeLevelCluster(node_count=256, topology=topo())
        within = cluster.topology.domain_range("rack2")
        for _ in range(5):
            assert cluster.drain_take_idle("drain:0", within)
        offline = [n for n in range(256) if cluster.slot_victim(n) is None
                   and cluster._node_offline[n]]
        assert all(n in within for n in offline)
        cluster.drain_release("drain:0")
        assert cluster.free_nodes == 256
