"""Unit tests for the deterministic fault-injection harness."""

import json
import time

import pytest

from repro.experiments.faultinject import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    active_plan,
    install,
    mangle_store_line,
    on_cell_attempt,
)

KEY = "adversarial|10|fcfs|0|0|scenario|none|flat"


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts and ends with injection fully off."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="explode")

    def test_rejects_unknown_crash_mode(self):
        with pytest.raises(ValueError, match="crash mode"):
            FaultRule(kind="crash", mode="segfault")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="p must be"):
            FaultRule(kind="crash", p=1.5)
        with pytest.raises(ValueError, match="p must be"):
            FaultRule(kind="crash", p=-0.1)

    def test_rejects_bad_max_attempt(self):
        with pytest.raises(ValueError, match="max_attempt"):
            FaultRule(kind="hang", max_attempt=0)

    def test_mode_is_crash_only_but_harmless_elsewhere(self):
        # Non-crash kinds ignore mode; constructing them stays legal.
        assert FaultRule(kind="hang").mode == "raise"


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(kind="crash", mode="exit", match="|sjf|"),
                FaultRule(kind="torn_write", p=0.25, max_attempt=3),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json('["a list"]')
        with pytest.raises(ValueError, match="needs a 'kind'"):
            FaultPlan.from_json('{"rules": [{"p": 1.0}]}')
        with pytest.raises(ValueError, match="unknown fault rule field"):
            FaultPlan.from_json(
                '{"rules": [{"kind": "crash", "wat": 1}]}'
            )

    def test_fires_is_deterministic(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="crash", p=0.5),))
        rule = plan.rules[0]
        first = [plan.fires(rule, f"cell{i}", 1) for i in range(64)]
        again = [plan.fires(rule, f"cell{i}", 1) for i in range(64)]
        assert first == again
        # A hashed p=0.5 over 64 keys hits a nontrivial subset.
        assert 0 < sum(first) < 64

    def test_fires_depends_on_seed(self):
        rule = FaultRule(kind="crash", p=0.5)
        a = [FaultPlan(seed=0, rules=(rule,)).fires(rule, f"c{i}", 1)
             for i in range(64)]
        b = [FaultPlan(seed=1, rules=(rule,)).fires(rule, f"c{i}", 1)
             for i in range(64)]
        assert a != b

    def test_fires_respects_match_and_max_attempt(self):
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", match="|sjf|", max_attempt=2),)
        )
        rule = plan.rules[0]
        assert plan.fires(rule, "a|10|sjf|0", 1)
        assert plan.fires(rule, "a|10|sjf|0", 2)
        assert not plan.fires(rule, "a|10|sjf|0", 3)
        assert not plan.fires(rule, "a|10|fcfs|0", 1)

    def test_p_zero_never_fires(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", p=0.0),))
        assert not any(
            plan.fires(plan.rules[0], f"c{i}", 1) for i in range(32)
        )

    def test_rule_kind_routing(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="torn_write"),
                FaultRule(kind="hang"),
            )
        )
        assert plan.cell_rule(KEY, 1).kind == "hang"
        assert plan.write_rule(KEY, 1).kind == "torn_write"
        assert plan.cell_rule(KEY, 99) is None


class TestActivation:
    def test_off_by_default(self):
        assert active_plan() is None

    def test_env_plan_parsed_and_cached(self, monkeypatch):
        raw = json.dumps({"seed": 5, "rules": [{"kind": "crash"}]})
        monkeypatch.setenv(ENV_VAR, raw)
        plan = active_plan()
        assert plan.seed == 5
        assert active_plan() is plan  # cached on the raw string
        monkeypatch.setenv(
            ENV_VAR, json.dumps({"seed": 6, "rules": []})
        )
        assert active_plan().seed == 6  # new string, re-parsed

    def test_blank_env_means_off(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert active_plan() is None

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps({"seed": 1, "rules": []}))
        override = FaultPlan(seed=42)
        install(override)
        assert active_plan() is override
        install(None)
        assert active_plan().seed == 1

    def test_malformed_env_is_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "{broken")
        with pytest.raises(ValueError, match="malformed"):
            active_plan()


class TestCellHook:
    def test_noop_without_plan(self):
        on_cell_attempt(KEY, 1)  # must not raise

    def test_crash_raise(self):
        install(FaultPlan(rules=(FaultRule(kind="crash"),)))
        with pytest.raises(InjectedCrash, match="attempt 1"):
            on_cell_attempt(KEY, 1)
        # Past max_attempt the same cell sails through.
        on_cell_attempt(KEY, 2)

    def test_hang_sleeps(self):
        install(
            FaultPlan(rules=(FaultRule(kind="hang", hang_s=0.05),))
        )
        t0 = time.monotonic()
        on_cell_attempt(KEY, 1)
        assert time.monotonic() - t0 >= 0.05

    def test_write_rules_do_not_crash_cells(self):
        install(FaultPlan(rules=(FaultRule(kind="torn_write"),)))
        on_cell_attempt(KEY, 1)


class TestStoreWriteHook:
    LINE = '{"schema_version": 3, "scenario": "adversarial"}'

    def test_passthrough_without_plan(self):
        assert mangle_store_line(KEY, self.LINE) == (self.LINE, True)

    def test_torn_write_truncates_without_newline_flag(self):
        install(FaultPlan(rules=(FaultRule(kind="torn_write"),)))
        text, complete = mangle_store_line(KEY, self.LINE)
        assert not complete
        assert text == self.LINE[: len(self.LINE) // 2]

    def test_corrupt_write_garbles_but_completes(self):
        install(FaultPlan(rules=(FaultRule(kind="corrupt_write"),)))
        text, complete = mangle_store_line(KEY, self.LINE)
        assert complete
        assert text.startswith("#CORRUPT#")
        assert "\n" not in text

    def test_write_attempts_counted_per_key(self):
        # max_attempt=1: only the first write of each key is injured —
        # the re-write after a resume (same process) goes through.
        install(FaultPlan(rules=(FaultRule(kind="torn_write"),)))
        _, first = mangle_store_line(KEY, self.LINE)
        _, second = mangle_store_line(KEY, self.LINE)
        assert (first, second) == (False, True)
        _, other = mangle_store_line("other|key", self.LINE)
        assert other is False

    def test_install_resets_write_counters(self):
        plan = FaultPlan(rules=(FaultRule(kind="torn_write"),))
        install(plan)
        mangle_store_line(KEY, self.LINE)
        install(plan)  # fresh install = fresh counters
        _, complete = mangle_store_line(KEY, self.LINE)
        assert complete is False

    def test_cell_rules_do_not_mangle_writes(self):
        install(FaultPlan(rules=(FaultRule(kind="crash"),)))
        assert mangle_store_line(KEY, self.LINE) == (self.LINE, True)
