"""Tests for the cross-seed scheduler comparison utility."""

import math

import pytest

from repro.analysis.significance import (
    PairedComparison,
    compare_schedulers,
    render_comparison,
)


class TestCompareSchedulers:
    def test_identical_schedulers_tie(self):
        comps = compare_schedulers(
            "resource_sparse", 8, "fcfs", "fcfs", n_seeds=3,
            metrics=("makespan", "throughput"),
        )
        for comp in comps.values():
            assert comp.mean_diff == 0.0
            assert math.isnan(comp.p_value)
            assert comp.direction == "tie"

    def test_llm_beats_fcfs_on_wait_under_contention(self):
        comps = compare_schedulers(
            "heterogeneous_mix", 25, "claude-3.7-sim", "fcfs",
            n_seeds=4, metrics=("avg_wait_time",),
        )
        comp = comps["avg_wait_time"]
        assert comp.mean_a < comp.mean_b
        assert comp.direction == "a"
        assert comp.n_seeds == 4

    def test_direction_orientation(self):
        lower = PairedComparison("makespan", 1.0, 2.0, -1.0, 0.01, 5)
        assert lower.direction == "a"
        higher = PairedComparison("throughput", 1.0, 2.0, -1.0, 0.01, 5)
        assert higher.direction == "b"

    def test_n_seeds_validation(self):
        with pytest.raises(ValueError):
            compare_schedulers("adversarial", 5, "fcfs", "sjf", n_seeds=1)


class TestRender:
    def test_table_contains_labels_and_metrics(self):
        comps = compare_schedulers(
            "resource_sparse", 6, "fcfs", "sjf", n_seeds=2,
            metrics=("makespan",),
        )
        text = render_comparison(comps, "fcfs", "sjf")
        assert "fcfs" in text
        assert "makespan" in text
