"""Unit tests for distribution statistics."""

import numpy as np
import pytest

from repro.analysis.stats import box_stats, summarize_latencies


class TestBoxStats:
    def test_simple_distribution(self):
        bs = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert bs.median == 3.0
        assert bs.q1 == 2.0
        assert bs.q3 == 4.0
        assert bs.n == 5
        assert bs.outliers == ()
        assert bs.whisker_lo == 1.0
        assert bs.whisker_hi == 5.0

    def test_outlier_detection(self):
        values = [1.0] * 10 + [100.0]
        bs = box_stats(values)
        assert bs.outliers == (100.0,)
        assert bs.whisker_hi == 1.0

    def test_iqr(self):
        bs = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert bs.iqr == 2.0

    def test_mean_std(self):
        bs = box_stats([2.0, 4.0])
        assert bs.mean == 3.0
        assert bs.std == 1.0

    def test_single_value(self):
        bs = box_stats([7.0])
        assert bs.median == 7.0
        assert bs.whisker_lo == bs.whisker_hi == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_constant_distribution(self):
        bs = box_stats([5.0] * 20)
        assert bs.median == 5.0
        assert bs.iqr == 0.0
        assert bs.outliers == ()


class TestLatencySummary:
    def test_known_values(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.n_calls == 4
        assert summary.total_s == 10.0
        assert summary.mean_s == 2.5
        assert summary.max_s == 4.0

    def test_over_100s_count(self):
        summary = summarize_latencies([5.0, 150.0, 200.0])
        assert summary.over_100s == 2

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        summary = summarize_latencies(rng.exponential(10.0, 1000))
        assert summary.median_s <= summary.p90_s <= summary.p99_s <= summary.max_s

    def test_empty(self):
        summary = summarize_latencies([])
        assert summary.n_calls == 0
        assert summary.total_s == 0.0
        assert summary.over_100s == 0
