"""Unit tests for the event queue and the array-backed calendar."""

import pytest

from repro.sim.events import ArrayCalendar, Event, EventKind, EventQueue


def ev(time, kind=EventKind.ARRIVAL, job_id=1):
    return Event(time=time, kind=kind, job_id=job_id)


def sealed(*events):
    """An ArrayCalendar with *events* = (time, kind, payload) triples
    loaded into the static lane, sealed and ready to pop."""
    cal = ArrayCalendar()
    for time, kind, payload in events:
        cal.add_static(time, kind, payload)
    cal.seal()
    return cal


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(ev(t))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_completion_before_arrival_at_same_time(self):
        q = EventQueue()
        q.push(ev(2.0, EventKind.ARRIVAL, job_id=10))
        q.push(ev(2.0, EventKind.COMPLETION, job_id=20))
        first, second = q.pop(), q.pop()
        assert first.kind is EventKind.COMPLETION
        assert second.kind is EventKind.ARRIVAL

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        for job_id in (7, 8, 9):
            q.push(ev(1.0, EventKind.ARRIVAL, job_id=job_id))
        assert [q.pop().job_id for _ in range(3)] == [7, 8, 9]

    def test_same_instant_kind_order_is_pinned(self):
        """The full same-timestamp ordering contract, including the
        disruption kinds: restorations before removals, disruptions
        before arrivals. This order is part of the reproducibility
        guarantee — changing it changes every disrupted schedule."""
        q = EventQueue()
        # Push in deliberately scrambled order.
        scrambled = [
            EventKind.ARRIVAL,
            EventKind.DRAIN_START,
            EventKind.NODE_REPAIR,
            EventKind.DRAIN_ANNOUNCE,
            EventKind.COMPLETION,
            EventKind.NODE_FAILURE,
            EventKind.DRAIN_END,
        ]
        for kind in scrambled:
            q.push(ev(5.0, kind))
        popped = [q.pop().kind for _ in range(len(scrambled))]
        assert popped == [
            EventKind.COMPLETION,
            EventKind.NODE_REPAIR,
            EventKind.DRAIN_END,
            EventKind.NODE_FAILURE,
            EventKind.DRAIN_START,
            EventKind.DRAIN_ANNOUNCE,
            EventKind.ARRIVAL,
        ]

    def test_failure_before_arrival_at_same_time(self):
        """A job arriving the instant a node dies must queue against
        the shrunken cluster: NODE_FAILURE fires first."""
        q = EventQueue()
        q.push(ev(3.0, EventKind.ARRIVAL, job_id=1))
        q.push(ev(3.0, EventKind.NODE_FAILURE, job_id=0))
        assert q.pop().kind is EventKind.NODE_FAILURE
        assert q.pop().kind is EventKind.ARRIVAL

    def test_repair_before_failure_at_same_time(self):
        """Capacity returning and capacity leaving at the same instant:
        the repair lands first, so back-to-back failure cascades on a
        full cluster always see the freshly-repaired node."""
        q = EventQueue()
        q.push(ev(3.0, EventKind.NODE_FAILURE, job_id=1))
        q.push(ev(3.0, EventKind.NODE_REPAIR, job_id=0))
        assert q.pop().kind is EventKind.NODE_REPAIR

    def test_disruption_ties_break_by_insertion(self):
        q = EventQueue()
        for idx in (2, 0, 1):
            q.push(ev(4.0, EventKind.NODE_FAILURE, job_id=idx))
        assert [q.pop().job_id for _ in range(3)] == [2, 0, 1]

    def test_legacy_kind_values_are_stable(self):
        """COMPLETION keeps priority 0 and every disruption kind sorts
        before ARRIVAL; zero-disruption replays are unaffected by the
        enum growing."""
        assert int(EventKind.COMPLETION) == 0
        assert all(
            int(kind) < int(EventKind.ARRIVAL)
            for kind in EventKind
            if kind is not EventKind.ARRIVAL
        )


class TestQueueOperations:
    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(ev(1.0))
        assert q.peek() is not None
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None
        assert EventQueue().peek_time() is None

    def test_peek_time(self):
        q = EventQueue()
        q.push(ev(3.5))
        assert q.peek_time() == 3.5

    def test_pop_until_inclusive(self):
        q = EventQueue()
        for t in [1.0, 2.0, 3.0, 4.0]:
            q.push(ev(t))
        popped = q.pop_until(3.0)
        assert [e.time for e in popped] == [1.0, 2.0, 3.0]
        assert len(q) == 1

    def test_pop_until_empty_result(self):
        q = EventQueue()
        q.push(ev(10.0))
        assert q.pop_until(5.0) == []

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(ev(1.0))
        assert q and len(q) == 1


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(ev(-1.0))

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(ev(float("nan")))


class TestArrayCalendarOrdering:
    """The ArrayCalendar must replay EventQueue's (time, kind, seq)
    contract exactly — including across its two lanes."""

    def test_pops_in_time_order(self):
        cal = sealed(
            (5.0, EventKind.ARRIVAL, 1),
            (1.0, EventKind.ARRIVAL, 2),
            (3.0, EventKind.ARRIVAL, 3),
        )
        assert [cal.pop()[0] for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_same_instant_kind_order_is_pinned(self):
        """The full same-timestamp kind ordering, pushed scrambled —
        the exact contract TestOrdering pins for EventQueue."""
        scrambled = [
            EventKind.ARRIVAL,
            EventKind.DRAIN_START,
            EventKind.NODE_REPAIR,
            EventKind.DRAIN_ANNOUNCE,
            EventKind.COMPLETION,
            EventKind.NODE_FAILURE,
            EventKind.DRAIN_END,
        ]
        cal = sealed(*[(5.0, kind, i) for i, kind in enumerate(scrambled)])
        popped = [cal.pop()[1] for _ in range(len(scrambled))]
        assert popped == [
            int(EventKind.COMPLETION),
            int(EventKind.NODE_REPAIR),
            int(EventKind.DRAIN_END),
            int(EventKind.NODE_FAILURE),
            int(EventKind.DRAIN_START),
            int(EventKind.DRAIN_ANNOUNCE),
            int(EventKind.ARRIVAL),
        ]

    def test_full_ties_break_by_insertion_order(self):
        cal = sealed(
            *[(1.0, EventKind.ARRIVAL, payload) for payload in (7, 8, 9)]
        )
        assert [cal.pop()[2] for _ in range(3)] == [7, 8, 9]

    def test_dynamic_lane_merges_by_time_and_kind(self):
        """A mid-run completion pushed *after* sealing still pops
        before a same-instant static arrival (kind order), and before
        any later static event (time order)."""
        cal = sealed(
            (2.0, EventKind.ARRIVAL, 1),
            (4.0, EventKind.ARRIVAL, 2),
        )
        assert cal.pop()[2] == 1
        cal.push(4.0, EventKind.COMPLETION, 99)
        assert [cal.pop()[1:] for _ in range(2)] == [
            (int(EventKind.COMPLETION), 99),
            (int(EventKind.ARRIVAL), 2),
        ]

    def test_dynamic_seqs_continue_after_static(self):
        """Cross-lane full ties (same time *and* kind) replay global
        insertion order: static first, then pushes in push order."""
        cal = sealed((3.0, EventKind.COMPLETION, 1))
        cal.push(3.0, EventKind.COMPLETION, 2)
        cal.push(3.0, EventKind.COMPLETION, 3)
        assert [cal.pop()[2] for _ in range(3)] == [1, 2, 3]

    def test_matches_event_queue_on_scrambled_schedule(self):
        """Differential check: an arbitrary static schedule pops in
        exactly the order EventQueue pops the same pushes."""
        events = [
            (4.0, EventKind.ARRIVAL, 1),
            (2.0, EventKind.NODE_FAILURE, 0),
            (2.0, EventKind.ARRIVAL, 2),
            (2.0, EventKind.NODE_REPAIR, 0),
            (0.0, EventKind.ARRIVAL, 3),
            (4.0, EventKind.COMPLETION, 1),
            (2.0, EventKind.ARRIVAL, 4),
        ]
        q = EventQueue()
        for time, kind, payload in events:
            q.push(Event(time=time, kind=kind, job_id=payload))
        cal = sealed(*events)
        expected = [
            (e.time, int(e.kind), e.job_id)
            for e in (q.pop() for _ in range(len(events)))
        ]
        assert [cal.pop() for _ in range(len(events))] == expected


class TestArrayCalendarOperations:
    def test_peek_time_does_not_remove(self):
        cal = sealed((3.5, EventKind.ARRIVAL, 1))
        assert cal.peek_time() == 3.5
        assert len(cal) == 1

    def test_empty_calendar(self):
        cal = sealed()
        assert not cal and len(cal) == 0
        assert cal.peek_time() is None
        with pytest.raises(IndexError):
            cal.pop()

    def test_pop_until_inclusive(self):
        cal = sealed(
            *[(t, EventKind.ARRIVAL, i) for i, t in enumerate([1.0, 2.0, 3.0, 4.0])]
        )
        popped = list(cal.pop_until(3.0))
        assert [time for time, _, _ in popped] == [1.0, 2.0, 3.0]
        assert len(cal) == 1

    def test_pop_until_empty_result(self):
        cal = sealed((10.0, EventKind.ARRIVAL, 1))
        assert list(cal.pop_until(5.0)) == []
        assert len(cal) == 1

    def test_len_and_bool_span_both_lanes(self):
        cal = sealed((1.0, EventKind.ARRIVAL, 1))
        cal.push(2.0, EventKind.COMPLETION, 1)
        assert cal and len(cal) == 2
        cal.pop(), cal.pop()
        assert not cal and len(cal) == 0


class TestArrayCalendarLifecycle:
    def test_add_static_after_seal_rejected(self):
        cal = sealed()
        with pytest.raises(RuntimeError):
            cal.add_static(1.0, EventKind.ARRIVAL, 1)

    def test_push_before_seal_rejected(self):
        cal = ArrayCalendar()
        with pytest.raises(RuntimeError):
            cal.push(1.0, EventKind.COMPLETION, 1)

    def test_double_seal_rejected(self):
        cal = sealed()
        with pytest.raises(RuntimeError):
            cal.seal()

    def test_negative_time_rejected(self):
        cal = ArrayCalendar()
        with pytest.raises(ValueError):
            cal.add_static(-1.0, EventKind.ARRIVAL, 1)
        cal.seal()
        with pytest.raises(ValueError):
            cal.push(-1.0, EventKind.COMPLETION, 1)

    def test_nan_time_rejected(self):
        cal = ArrayCalendar()
        with pytest.raises(ValueError):
            cal.add_static(float("nan"), EventKind.ARRIVAL, 1)
        cal.seal()
        with pytest.raises(ValueError):
            cal.push(float("nan"), EventKind.COMPLETION, 1)
