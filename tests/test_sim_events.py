"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventKind, EventQueue


def ev(time, kind=EventKind.ARRIVAL, job_id=1):
    return Event(time=time, kind=kind, job_id=job_id)


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(ev(t))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_completion_before_arrival_at_same_time(self):
        q = EventQueue()
        q.push(ev(2.0, EventKind.ARRIVAL, job_id=10))
        q.push(ev(2.0, EventKind.COMPLETION, job_id=20))
        first, second = q.pop(), q.pop()
        assert first.kind is EventKind.COMPLETION
        assert second.kind is EventKind.ARRIVAL

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        for job_id in (7, 8, 9):
            q.push(ev(1.0, EventKind.ARRIVAL, job_id=job_id))
        assert [q.pop().job_id for _ in range(3)] == [7, 8, 9]


class TestQueueOperations:
    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(ev(1.0))
        assert q.peek() is not None
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None
        assert EventQueue().peek_time() is None

    def test_peek_time(self):
        q = EventQueue()
        q.push(ev(3.5))
        assert q.peek_time() == 3.5

    def test_pop_until_inclusive(self):
        q = EventQueue()
        for t in [1.0, 2.0, 3.0, 4.0]:
            q.push(ev(t))
        popped = q.pop_until(3.0)
        assert [e.time for e in popped] == [1.0, 2.0, 3.0]
        assert len(q) == 1

    def test_pop_until_empty_result(self):
        q = EventQueue()
        q.push(ev(10.0))
        assert q.pop_until(5.0) == []

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(ev(1.0))
        assert q and len(q) == 1


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(ev(-1.0))

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(ev(float("nan")))
