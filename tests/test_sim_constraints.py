"""Unit tests for structured constraint validation."""

import pytest

from repro.sim.actions import BackfillJob, Delay, StartJob, Stop
from repro.sim.cluster import ResourcePool
from repro.sim.constraints import ConstraintChecker, ViolationKind

from tests.conftest import make_job


@pytest.fixture
def checker():
    return ConstraintChecker()


@pytest.fixture
def pool():
    return ResourcePool(total_nodes=8, total_memory_gb=64.0)


def validate(checker, action, *, queued=None, pool=None, all_scheduled=False):
    return checker.validate(
        action,
        queued=queued or {},
        cluster=pool or ResourcePool(total_nodes=8, total_memory_gb=64.0),
        all_scheduled=all_scheduled,
    )


class TestDelayAndStop:
    def test_delay_always_valid(self, checker):
        assert validate(checker, Delay).ok

    def test_stop_valid_when_all_scheduled(self, checker):
        assert validate(checker, Stop, all_scheduled=True).ok

    def test_premature_stop_rejected(self, checker):
        result = validate(checker, Stop, all_scheduled=False)
        assert not result.ok
        assert result.violations[0].kind is ViolationKind.PREMATURE_STOP


class TestStartValidation:
    def test_feasible_start_ok(self, checker, pool):
        job = make_job(1, nodes=4, memory=16.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        assert result.ok

    def test_unknown_job_rejected(self, checker, pool):
        result = validate(checker, StartJob(42), queued={}, pool=pool)
        assert not result.ok
        assert result.violations[0].kind is ViolationKind.NOT_QUEUED
        assert result.violations[0].job_id == 42

    def test_insufficient_nodes(self, checker, pool):
        pool.allocate(make_job(9, nodes=6, memory=1.0))
        job = make_job(1, nodes=4, memory=1.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        kinds = {v.kind for v in result.violations}
        assert kinds == {ViolationKind.INSUFFICIENT_NODES}

    def test_insufficient_memory(self, checker, pool):
        pool.allocate(make_job(9, nodes=1, memory=60.0))
        job = make_job(1, nodes=1, memory=16.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        kinds = {v.kind for v in result.violations}
        assert kinds == {ViolationKind.INSUFFICIENT_MEMORY}

    def test_both_resources_insufficient(self, checker, pool):
        pool.allocate(make_job(9, nodes=6, memory=60.0))
        job = make_job(1, nodes=4, memory=16.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        kinds = {v.kind for v in result.violations}
        assert kinds == {
            ViolationKind.INSUFFICIENT_NODES,
            ViolationKind.INSUFFICIENT_MEMORY,
        }

    def test_exceeds_total_capacity(self, checker, pool):
        job = make_job(1, nodes=100, memory=1.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        assert result.violations[0].kind is ViolationKind.EXCEEDS_CAPACITY

    def test_backfill_validated_like_start(self, checker, pool):
        job = make_job(1, nodes=4, memory=16.0)
        assert validate(checker, BackfillJob(1), queued={1: job}, pool=pool).ok

    def test_violation_detail_mentions_numbers(self, checker, pool):
        pool.allocate(make_job(9, nodes=6, memory=1.0))
        job = make_job(1, nodes=4, memory=1.0)
        result = validate(checker, StartJob(1), queued={1: job}, pool=pool)
        assert "requires 4 nodes" in result.violations[0].detail
        assert "available: 2" in result.violations[0].detail


class TestViolationStr:
    def test_str_includes_kind_and_job(self):
        from repro.sim.constraints import Violation

        v = Violation(ViolationKind.NOT_QUEUED, job_id=3, detail="gone")
        assert "not_queued" in str(v)
        assert "job 3" in str(v)
