"""Integration-level tests of the discrete event engine."""

import pytest

from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.heuristics import DelayingScheduler, FirstFitScheduler
from repro.sim.actions import Delay, StartJob, Stop
from repro.sim.cluster import ResourcePool
from repro.sim.schedule import ScheduleResult
from repro.sim.simulator import (
    CompletedLog,
    HPCSimulator,
    SimulationError,
    SystemView,
    simulate,
)

from tests.conftest import make_job, run_sim


class TestBasicExecution:
    def test_single_job_runs_immediately(self):
        result = run_sim([make_job(1, duration=10.0)], FCFSScheduler())
        rec = result.record_for(1)
        assert rec.start_time == 0.0
        assert rec.end_time == 10.0

    def test_all_jobs_complete_exactly_once(self):
        jobs = [make_job(i, submit=i * 5.0, duration=30.0) for i in range(1, 6)]
        result = run_sim(jobs, FCFSScheduler())
        assert sorted(r.job.job_id for r in result.records) == [1, 2, 3, 4, 5]

    def test_sequential_when_cluster_full(self):
        jobs = [
            make_job(1, nodes=8, duration=100.0),
            make_job(2, nodes=8, duration=50.0),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(1).start_time == 0.0
        assert result.record_for(2).start_time == 100.0

    def test_parallel_when_resources_allow(self):
        jobs = [
            make_job(1, nodes=4, duration=100.0),
            make_job(2, nodes=4, duration=50.0),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(1).start_time == 0.0
        assert result.record_for(2).start_time == 0.0

    def test_job_not_started_before_submission(self):
        jobs = [make_job(1, submit=42.0, duration=10.0)]
        result = run_sim(jobs, FCFSScheduler())
        assert result.record_for(1).start_time == 42.0

    def test_resources_released_at_completion(self):
        # Job 2 (8 nodes) must wait for job 1 (5 nodes) even though it
        # arrives while job 1 runs; it starts exactly at the release.
        jobs = [
            make_job(1, nodes=5, duration=60.0),
            make_job(2, submit=10.0, nodes=8, duration=10.0),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(2).start_time == 60.0

    def test_memory_constraint_serializes(self):
        jobs = [
            make_job(1, nodes=1, memory=60.0, duration=30.0),
            make_job(2, nodes=1, memory=60.0, duration=30.0),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        assert result.record_for(2).start_time == 30.0


class TestDecisionRecords:
    def test_every_start_recorded(self):
        jobs = [make_job(i, duration=10.0) for i in range(1, 4)]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        placements = result.accepted_placements
        assert len(placements) == 3

    def test_delay_recorded_when_blocked(self):
        jobs = [
            make_job(1, nodes=8, duration=100.0),
            make_job(2, nodes=8, duration=10.0),
        ]
        result = run_sim(jobs, FCFSScheduler(), nodes=8, memory=64.0)
        delays = [
            d for d in result.decisions if d.action.kind.value == "Delay"
        ]
        assert delays

    def test_scheduler_name_propagates(self):
        result = run_sim([make_job(1)], FCFSScheduler())
        assert result.scheduler_name == "fcfs"


class TestRetryAndForcedDelay:
    class StubbornScheduler(FCFSScheduler):
        """Always proposes the same infeasible job."""

        name = "stubborn"

        def decide(self, view):
            # Job 2 needs the whole cluster while job 1 runs.
            if view.queued:
                return StartJob(view.queued[0].job_id)
            return Delay

    def test_forced_delay_after_retries(self):
        jobs = [
            make_job(1, nodes=8, duration=50.0),
            make_job(2, submit=1.0, nodes=8, duration=10.0),
        ]
        sim = HPCSimulator(
            jobs=jobs,
            scheduler=self.StubbornScheduler(),
            cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
            max_retries=2,
        )
        result = sim.run()
        rejected = result.rejected_decisions
        assert rejected  # infeasible proposals were recorded
        assert len(result.records) == 2  # and the run still completed

    def test_retry_indices_increment(self):
        jobs = [
            make_job(1, nodes=8, duration=50.0),
            make_job(2, submit=1.0, nodes=8, duration=10.0),
        ]
        sim = HPCSimulator(
            jobs=jobs,
            scheduler=self.StubbornScheduler(),
            cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
            max_retries=2,
        )
        result = sim.run()
        retries = [d.retry_index for d in result.rejected_decisions]
        assert max(retries) >= 1


class TestErrorConditions:
    def test_oversize_job_rejected_at_init(self):
        with pytest.raises(SimulationError, match="exceeds total cluster"):
            HPCSimulator(
                jobs=[make_job(1, nodes=1000)],
                scheduler=FCFSScheduler(),
                cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
            )

    def test_deadlock_detected(self):
        class AlwaysDelay(FCFSScheduler):
            name = "always_delay"

            def decide(self, view):
                return Delay

        sim = HPCSimulator(
            jobs=[make_job(1)],
            scheduler=AlwaysDelay(),
            cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
        )
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()

    def test_decision_budget_guard(self):
        class Spinner(FCFSScheduler):
            """Alternates infeasible proposals forever via retries."""

            name = "spinner"

            def decide(self, view):
                if view.queued:
                    return StartJob(view.queued[-1].job_id)
                return Delay

        jobs = [
            make_job(1, nodes=8, duration=1e6),
            make_job(2, submit=1.0, nodes=8, duration=10.0),
        ]
        sim = HPCSimulator(
            jobs=jobs,
            scheduler=Spinner(),
            cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
            max_retries=10**9,
            max_decisions=50,
        )
        with pytest.raises(SimulationError, match="decision budget"):
            sim.run()


class TestSystemView:
    captured: list = []

    def test_view_contents(self):
        outer = self

        class Capture(FCFSScheduler):
            def decide(self, view):
                outer.captured.append(view)
                return super().decide(view)

        self.captured.clear()
        jobs = [
            make_job(1, nodes=2, duration=100.0),
            make_job(2, submit=10.0, nodes=2, duration=20.0),
        ]
        run_sim(jobs, Capture(), nodes=8, memory=64.0)
        first = self.captured[0]
        assert first.now == 0.0
        assert first.free_nodes == 8
        assert first.pending_arrivals == 1
        assert first.next_arrival_time == 10.0
        second = self.captured[1]
        assert second.now == 10.0
        assert second.free_nodes == 6
        assert second.next_completion_time == 100.0

    def test_feasible_jobs_helper(self):
        view = SystemView(
            now=0.0,
            queued=(make_job(1, nodes=4), make_job(2, nodes=16)),
            running=(),
            completed_ids=(),
            free_nodes=8,
            free_memory_gb=64.0,
            total_nodes=8,
            total_memory_gb=64.0,
            pending_arrivals=0,
            next_arrival_time=None,
            next_completion_time=None,
        )
        assert [j.job_id for j in view.feasible_jobs()] == [1]
        assert view.queued_job(2).job_id == 2
        assert view.queued_job(3) is None
        assert view.all_jobs_scheduled is False

    def test_user_wait_times(self):
        view = SystemView(
            now=100.0,
            queued=(
                make_job(1, submit=0.0, user="alice"),
                make_job(2, submit=50.0, user="alice"),
                make_job(3, submit=90.0, user="bob"),
            ),
            running=(),
            completed_ids=(),
            free_nodes=8,
            free_memory_gb=64.0,
            total_nodes=8,
            total_memory_gb=64.0,
            pending_arrivals=0,
            next_arrival_time=None,
            next_completion_time=None,
        )
        waits = view.user_wait_times()
        assert waits["alice"] == pytest.approx(150.0)
        assert waits["bob"] == pytest.approx(10.0)


class TestCompletedLog:
    def test_sequence_semantics(self):
        log = CompletedLog([3, 1, 4, 1, 5])
        assert len(log) == 5
        assert list(log) == [3, 1, 4, 1, 5]
        assert log[0] == 3
        assert log[-1] == 5
        assert log[1:3] == (1, 4)
        assert 4 in log
        assert log == (3, 1, 4, 1, 5)
        assert log == [3, 1, 4, 1, 5]
        with pytest.raises(IndexError):
            log[5]

    def test_snapshot_is_isolated_from_appends(self):
        backing = [1, 2]
        snap = CompletedLog(backing, 2)
        backing.append(3)
        later = CompletedLog(backing)
        # The earlier snapshot still sees exactly two entries even
        # though it shares the grown backing list (zero-copy).
        assert tuple(snap) == (1, 2)
        assert tuple(later) == (1, 2, 3)
        assert snap != later

    def test_simulator_views_carry_live_completed_ids(self):
        seen: list[tuple[int, ...]] = []

        class Capture(FCFSScheduler):
            def decide(self, view):
                seen.append(tuple(view.completed_ids))
                return super().decide(view)

        jobs = [
            make_job(1, duration=10.0, nodes=8),
            make_job(2, submit=1.0, duration=10.0, nodes=8),
            make_job(3, submit=2.0, duration=10.0, nodes=8),
        ]
        run_sim(jobs, Capture(), nodes=8, memory=64.0)
        assert seen[0] == ()
        assert seen[-1] == (1, 2)  # two completions before job 3 starts

    def test_queued_job_index_matches_scan(self):
        jobs = tuple(make_job(i, nodes=1) for i in range(1, 6))
        view = SystemView(
            now=0.0,
            queued=jobs,
            running=(),
            completed_ids=(),
            free_nodes=8,
            free_memory_gb=64.0,
            total_nodes=8,
            total_memory_gb=64.0,
            pending_arrivals=0,
            next_arrival_time=None,
            next_completion_time=None,
        )
        for job in jobs:
            assert view.queued_job(job.job_id) is job
        assert view.queued_job(99) is None

    def test_view_reused_across_retries(self):
        views: list[SystemView] = []

        class AlwaysInvalid(FCFSScheduler):
            name = "always_invalid"

            def decide(self, view):
                views.append(view)
                if len(views) < 3:
                    return StartJob(999)  # rejected: unknown job
                return super().decide(view)

        run_sim([make_job(1, nodes=1)], AlwaysInvalid(), nodes=8, memory=64.0)
        # State cannot change between rejection retries, so the
        # simulator hands out the identical snapshot object.
        assert views[0] is views[1] is views[2]


class TestEmitsStop:
    def test_final_stop_query(self):
        class Stopper(FirstFitScheduler):
            name = "stopper"
            emits_stop = True

            def decide(self, view):
                if view.all_jobs_scheduled:
                    return Stop
                return super().decide(view)

        result = run_sim(
            [make_job(1, duration=10.0), make_job(2, duration=5.0)],
            Stopper(),
            nodes=8,
            memory=64.0,
        )
        stops = [
            d for d in result.decisions if d.action.kind.value == "Stop"
        ]
        assert len(stops) == 1
        assert stops[0].accepted


class TestSimulateHelper:
    def test_simulate_wrapper(self):
        result = simulate([make_job(1)], FCFSScheduler())
        assert isinstance(result, ScheduleResult)
        assert result.n_jobs == 1

    def test_empty_workload(self):
        result = simulate([], FCFSScheduler())
        assert result.n_jobs == 0
        assert result.makespan == 0.0

    def test_enforce_walltime_passthrough(self):
        job = make_job(1, duration=100.0, walltime=40.0)
        result = simulate([job], FCFSScheduler(), enforce_walltime=True)
        rec = result.record_for(1)
        assert rec.killed
        assert rec.end_time == 40.0

    def test_max_decisions_passthrough(self):
        jobs = [make_job(i) for i in range(1, 6)]
        with pytest.raises(SimulationError, match="decision budget"):
            simulate(jobs, FCFSScheduler(), max_decisions=2)


class TestDelayingScheduler:
    def test_initial_delays_shift_start(self):
        # Delays consume decision points but time only advances at
        # events, so with no competing events the job still starts at 0
        # after the scheduler stops delaying... unless no events exist,
        # which would deadlock — use two jobs so completions provide
        # events.
        jobs = [
            make_job(1, duration=10.0),
            make_job(2, submit=5.0, duration=10.0),
        ]
        result = run_sim(jobs, DelayingScheduler(delays=1), nodes=8, memory=64.0)
        assert result.record_for(1).start_time == 5.0  # delayed to next event
