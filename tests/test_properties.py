"""Property-based tests (hypothesis) for core invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grammar import parse_reply, render_reply
from repro.metrics.fairness import jain_index
from repro.metrics.normalize import normalize_to_baseline
from repro.metrics.objectives import compute_metrics
from repro.schedulers.fcfs import EasyBackfillScheduler, FCFSScheduler
from repro.schedulers.heuristics import FirstFitScheduler, RandomScheduler
from repro.schedulers.packing import ResourceProfile, pack_order
from repro.schedulers.sjf import SJFScheduler
from repro.sim.actions import BackfillJob, Delay, StartJob, Stop
from repro.sim.cluster import ResourcePool
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job
from repro.sim.simulator import HPCSimulator

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

job_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),   # submit
        st.floats(min_value=1.0, max_value=1000.0),  # duration
        st.integers(min_value=1, max_value=8),       # nodes
        st.floats(min_value=0.5, max_value=64.0),    # memory
        st.integers(min_value=0, max_value=3),       # user index
    ),
    min_size=1,
    max_size=15,
)


def build_jobs(raw):
    return [
        Job(
            job_id=i + 1,
            submit_time=submit,
            duration=duration,
            nodes=nodes,
            memory_gb=memory,
            user=f"user_{user}",
        )
        for i, (submit, duration, nodes, memory, user) in enumerate(raw)
    ]


SCHEDULER_FACTORIES = [
    lambda: FCFSScheduler(),
    lambda: EasyBackfillScheduler(),
    lambda: SJFScheduler(),
    lambda: FirstFitScheduler(),
    lambda: RandomScheduler(seed=0),
]


# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(raw=job_lists, which=st.integers(min_value=0, max_value=4))
def test_simulation_invariants(raw, which):
    """For arbitrary feasible workloads under arbitrary policies:
    every job runs exactly once, never before submission, never beyond
    cluster capacity, for exactly its duration."""
    jobs = build_jobs(raw)
    sim = HPCSimulator(
        jobs=jobs,
        scheduler=SCHEDULER_FACTORIES[which](),
        cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
    )
    result = sim.run()
    result.verify_capacity()
    assert sorted(r.job.job_id for r in result.records) == [
        j.job_id for j in jobs
    ]
    for rec in result.records:
        assert rec.start_time >= rec.job.submit_time - 1e-9
        assert rec.end_time - rec.start_time == pytest.approx(
            rec.job.duration, rel=1e-12, abs=1e-6
        )


@settings(max_examples=20, deadline=None)
@given(raw=job_lists)
def test_llm_agent_invariants(raw):
    """The ReAct agent obeys the same invariants under hallucination."""
    from repro.core.agent import create_llm_scheduler

    jobs = build_jobs(raw)
    agent = create_llm_scheduler(
        "claude-3.7-sim", seed=0, hallucination_rate=0.3
    )
    sim = HPCSimulator(
        jobs=jobs,
        scheduler=agent,
        cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
    )
    result = sim.run()
    result.verify_capacity()
    assert len(result.records) == len(jobs)


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50
    )
)
def test_jain_index_bounds(values):
    j = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(raw=job_lists)
def test_metric_sanity_on_fcfs(raw):
    jobs = build_jobs(raw)
    sim = HPCSimulator(
        jobs=jobs,
        scheduler=FCFSScheduler(),
        cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
    )
    report = compute_metrics(sim.run())
    assert report["makespan"] >= max(j.duration for j in jobs) - 1e-9
    assert report["avg_wait_time"] >= 0.0
    assert report["avg_turnaround_time"] >= report["avg_wait_time"]
    assert 0.0 < report["node_utilization"] <= 1.0 + 1e-9
    assert 0.0 < report["memory_utilization"] <= 1.0 + 1e-9
    assert report["throughput"] > 0.0


@settings(max_examples=40, deadline=None)
@given(
    vals=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=0.0, max_value=1e3),
        min_size=1,
    )
)
def test_normalization_identity(vals):
    out = normalize_to_baseline(vals, vals)
    for key, value in vals.items():
        if value == 0.0:
            assert math.isnan(out[key])
        else:
            assert out[key] == 1.0


# ---------------------------------------------------------------------------
# Grammar round-trip
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    job_id=st.integers(min_value=0, max_value=10**6),
    kind=st.sampled_from(["start", "backfill", "delay", "stop"]),
    thought=st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=200,
    ),
)
def test_grammar_round_trip(job_id, kind, thought):
    action = {
        "start": lambda: StartJob(job_id),
        "backfill": lambda: BackfillJob(job_id),
        "delay": lambda: Delay,
        "stop": lambda: Stop,
    }[kind]()
    text = render_reply(thought, action)
    assert parse_reply(text).action == action


# ---------------------------------------------------------------------------
# Packing invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(raw=job_lists)
def test_packing_never_oversubscribes(raw):
    jobs = build_jobs(raw)
    packed = pack_order(jobs, now=0.0, free_nodes=8, free_memory_gb=64.0)
    points = []
    for p in packed:
        assert p.start >= p.job.submit_time - 1e-9
        points.append((p.end, 0, -p.job.nodes, -p.job.memory_gb))
        points.append((p.start, 1, p.job.nodes, p.job.memory_gb))
    points.sort(key=lambda x: (x[0], x[1]))
    nodes = mem = 0.0
    for _, _, dn, dm in points:
        nodes += dn
        mem += dm
        assert nodes <= 8 + 1e-6
        assert mem <= 64.0 + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    releases=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=5,
    ),
    nodes=st.integers(min_value=1, max_value=8),
    duration=st.floats(min_value=1.0, max_value=50.0),
)
def test_profile_earliest_start_is_feasible(releases, nodes, duration):
    """Whatever earliest_start returns must be reservable."""
    profile = ResourceProfile(
        0.0, 2, 64.0, releases=[(t, n, 0.0) for t, n in releases]
    )
    total = 2 + sum(n for _, n in releases)
    if nodes > total:
        return  # would legitimately never fit
    start = profile.earliest_start(nodes, 1.0, duration, not_before=0.0)
    profile.reserve(start, duration, nodes, 1.0)  # must not raise


# ---------------------------------------------------------------------------
# Event queue ordering
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4),
            st.sampled_from([EventKind.ARRIVAL, EventKind.COMPLETION]),
        ),
        max_size=30,
    )
)
def test_event_queue_pop_order(times):
    q = EventQueue()
    for i, (t, kind) in enumerate(times):
        q.push(Event(t, kind, i))
    popped = [q.pop() for _ in range(len(times))]
    keys = [(e.time, int(e.kind)) for e in popped]
    assert keys == sorted(keys)
