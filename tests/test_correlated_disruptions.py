"""Correlated failure domains: generator, spec, and engine semantics.

Mirrors ``tests/test_disruption_regression.py``'s structure for the
domain-level axis PR 4 adds: seeded shock generators, the
``DomainFailure`` event's one-instant / pinned-ordering contract, and
the same-instant tie-breaks between domain failures, single-node
restorations, and arrivals.
"""

import pytest

from repro.schedulers.registry import create_scheduler
from repro.sim.cluster import NodeLevelCluster
from repro.sim.disruptions import (
    DISRUPTION_PRESETS,
    DisruptionSpec,
    DisruptionTrace,
    DomainFailure,
    NodeFailure,
    correlated_failures,
)
from repro.sim.job import Job
from repro.sim.simulator import HPCSimulator
from repro.sim.topology import ClusterTopology

TOPO = ClusterTopology(n_nodes=256, rack_size=32, racks_per_switch=4)


def job(jid, submit=0.0, duration=500.0, nodes=8, memory=None, walltime=None):
    return Job(
        job_id=jid, submit_time=submit, duration=duration, nodes=nodes,
        memory_gb=float(nodes) if memory is None else memory,
        walltime=walltime if walltime is not None else duration,
    )


def run_sim(jobs, trace, *, cluster=None, scheduler="fcfs", **kwargs):
    sim = HPCSimulator(
        jobs=list(jobs),
        scheduler=create_scheduler(scheduler, seed=0),
        cluster=cluster if cluster is not None else NodeLevelCluster(
            node_count=16, memory_per_node_gb=64.0,
            topology=ClusterTopology(n_nodes=16, rack_size=4),
        ),
        disruptions=trace,
        **kwargs,
    )
    return sim.run()


class TestDomainFailureValidation:
    def test_basic_construction(self):
        df = DomainFailure(10.0, (0, 1, 2), 20.0, domain="rack0")
        assert df.n_nodes == 3

    def test_rejects_empty_and_unsorted(self):
        with pytest.raises(ValueError):
            DomainFailure(10.0, (), 20.0)
        with pytest.raises(ValueError):
            DomainFailure(10.0, (2, 1), 20.0)
        with pytest.raises(ValueError):
            DomainFailure(10.0, (1, 1), 20.0)
        with pytest.raises(ValueError):
            DomainFailure(10.0, (0,), 5.0)

    def test_trace_rejects_overlapping_shocks_on_same_node(self):
        with pytest.raises(ValueError):
            DisruptionTrace(
                domain_failures=(
                    DomainFailure(10.0, (0, 1), 100.0, domain="rack0"),
                    DomainFailure(50.0, (1, 2), 200.0, domain="rack0"),
                )
            )

    def test_cross_type_overlap_is_tolerated(self):
        # A shock may strike a node that an independent failure already
        # took down; the engine handles it, so validation must not
        # reject the trace.
        trace = DisruptionTrace(
            failures=(NodeFailure(5.0, 0, 500.0),),
            domain_failures=(
                DomainFailure(10.0, (0, 1), 100.0, domain="rack0"),
            ),
        )
        assert trace and trace.n_events == 2

    def test_counts(self):
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(10.0, (0, 1, 2, 3), 100.0, domain="rack0"),
            )
        )
        assert trace.n_correlated_node_failures == 4


class TestCorrelatedGenerator:
    def test_deterministic(self):
        a = correlated_failures(
            topology=TOPO, horizon=500_000.0, domain_mtbf=40_000.0,
            mttr=2_000.0, seed=7,
        )
        b = correlated_failures(
            topology=TOPO, horizon=500_000.0, domain_mtbf=40_000.0,
            mttr=2_000.0, seed=7,
        )
        assert a == b
        assert a  # the horizon is long enough to produce shocks

    def test_domain_streams_independent_of_domain_count(self):
        # Rack 0's shocks must not change when the machine grows more
        # racks (per-domain spawned streams).
        small = ClusterTopology(n_nodes=64, rack_size=32)
        big = ClusterTopology(n_nodes=256, rack_size=32)
        kw = dict(horizon=500_000.0, domain_mtbf=30_000.0, mttr=1_500.0,
                  seed=3)
        shocks_small = [
            df for df in correlated_failures(topology=small, **kw)
            if df.domain == "rack0"
        ]
        shocks_big = [
            df for df in correlated_failures(topology=big, **kw)
            if df.domain == "rack0"
        ]
        assert shocks_small == shocks_big

    def test_full_correlation_takes_whole_domain(self):
        shocks = correlated_failures(
            topology=TOPO, horizon=500_000.0, domain_mtbf=50_000.0,
            mttr=2_000.0, correlation=1.0, seed=0,
        )
        for df in shocks:
            rack = TOPO.domain_range(df.domain)
            assert df.nodes == tuple(rack)

    def test_partial_correlation_block_inside_domain(self):
        shocks = correlated_failures(
            topology=TOPO, horizon=500_000.0, domain_mtbf=50_000.0,
            mttr=2_000.0, correlation=0.25, seed=0,
        )
        assert shocks
        for df in shocks:
            assert df.n_nodes == 8  # 0.25 × 32
            rack = TOPO.domain_range(df.domain)
            assert df.nodes[0] >= rack.start
            assert df.nodes[-1] < rack.stop
            # Contiguous block.
            assert df.nodes == tuple(
                range(df.nodes[0], df.nodes[0] + df.n_nodes)
            )

    def test_switch_level_shocks_span_racks(self):
        shocks = correlated_failures(
            topology=TOPO, horizon=1_000_000.0, domain_mtbf=200_000.0,
            mttr=3_000.0, level="switch", seed=1,
        )
        assert shocks
        for df in shocks:
            assert df.domain.startswith("switch")
            assert df.n_nodes == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            correlated_failures(
                topology=TOPO, horizon=100.0, domain_mtbf=-1.0, mttr=10.0
            )
        with pytest.raises(ValueError):
            correlated_failures(
                topology=TOPO, horizon=100.0, domain_mtbf=10.0, mttr=10.0,
                correlation=0.0,
            )


class TestSpecKnobs:
    def test_rack_mtbf_enables_the_spec(self):
        spec = DisruptionSpec(rack_mtbf=30_000.0)
        assert spec
        assert spec.signature() != "none"

    def test_signature_unchanged_for_uncorrelated_specs(self):
        # Resume-safety across the schema bump: a PR-3 spec keeps its
        # exact signature string.
        spec = DisruptionSpec(mtbf=60_000.0, mttr=800.0, seed=5)
        assert spec.signature() == "mtbf=60000,mttr=800,dseed=5"

    def test_correlated_signature_carries_knobs(self):
        sig = DisruptionSpec(
            rack_mtbf=30_000.0, correlation=0.5,
            correlation_level="switch",
        ).signature()
        assert "rack_mtbf=30000" in sig
        assert "corr=0.5" in sig
        assert "level=switch" in sig

    def test_build_respects_topology(self):
        spec = DisruptionSpec(rack_mtbf=20_000.0)
        trace = spec.build(
            n_nodes=256, horizon=300_000.0, topology=TOPO
        )
        assert trace.domain_failures
        assert not trace.failures
        with pytest.raises(ValueError):
            spec.build(
                n_nodes=128, horizon=1_000.0, topology=TOPO
            )

    def test_flat_topology_shocks_whole_machine(self):
        spec = DisruptionSpec(rack_mtbf=20_000.0)
        trace = spec.build(n_nodes=64, horizon=300_000.0)
        assert trace.domain_failures
        assert all(df.n_nodes == 64 for df in trace.domain_failures)

    def test_per_node_and_correlated_streams_differ(self):
        spec = DisruptionSpec(mtbf=30_000.0, rack_mtbf=30_000.0, seed=0)
        trace = spec.build(n_nodes=256, horizon=200_000.0, topology=TOPO)
        assert trace.failures and trace.domain_failures
        # The two processes draw from decoupled streams.
        node_times = {f.time for f in trace.failures}
        shock_times = {df.time for df in trace.domain_failures}
        assert not node_times & shock_times

    def test_presets_registered(self):
        assert "rack_storm" in DISRUPTION_PRESETS
        assert "switch_outage" in DISRUPTION_PRESETS
        assert DISRUPTION_PRESETS["rack_storm"].rack_mtbf is not None
        assert (
            DISRUPTION_PRESETS["switch_outage"].correlation_level
            == "switch"
        )


class TestDomainFailureSemantics:
    def test_one_event_kills_every_job_in_block_at_one_instant(self):
        # Jobs 1 and 2 fill nodes 0-3 and 4-7 (racks 0 and 1 under the
        # 4-node rack layout... but with spread placement job2 lands in
        # another rack); strike both racks with one shock.
        jobs = [job(1, nodes=4, duration=1000.0),
                job(2, nodes=4, duration=1000.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 5_000.0,
                              domain="switch0"),
            )
        )
        result = run_sim(jobs, trace)
        shock_kills = [p for p in result.preemptions
                       if p.reason == "failure"]
        assert len(shock_kills) == 2
        assert all(p.time == 100.0 for p in shock_kills)
        assert all(p.domain == "switch0" for p in shock_kills)
        # Pinned ordering: victims evicted in first-struck-slot order.
        assert [p.job_id for p in shock_kills] == [1, 2]

    def test_job_spanning_struck_nodes_dies_exactly_once(self):
        jobs = [job(1, nodes=8, duration=1000.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 2_000.0),
            )
        )
        result = run_sim(jobs, trace)
        assert len([p for p in result.preemptions
                    if p.reason == "failure"]) == 1

    def test_block_capacity_returns_at_domain_repair(self):
        # 16-node cluster; 12-node job arrives during the outage of
        # nodes 0-7 and can only start once the whole block repairs.
        jobs = [job(1, submit=200.0, nodes=12, duration=100.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 1_000.0),
            )
        )
        result = run_sim(jobs, trace)
        (rec,) = result.records
        assert rec.start_time == 1_000.0

    def test_aggregate_pool_shock_overlap_is_noop_per_label(self):
        # Aggregate-model twin of the node-level overlap test: node 0
        # is already down when a shock strikes nodes 0-7, so the shock
        # must take only the 7 fresh labels — never charge an extra
        # free node for the already-offline one.
        from repro.sim.cluster import ResourcePool

        jobs = [job(1, submit=200.0, nodes=8, duration=100.0)]
        trace = DisruptionTrace(
            failures=(NodeFailure(10.0, 0, 10_000.0),),
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 500.0,
                              domain="rack0"),
            ),
        )
        result = run_sim(
            jobs, trace,
            cluster=ResourcePool(total_nodes=16, total_memory_gb=1024.0),
        )
        (rec,) = result.records
        # 16 - 1 (node 0) - 7 (fresh shock labels) = 8 free at t=200.
        assert rec.start_time == 200.0

    def test_unresolvable_drain_domain_fails_fast(self):
        from repro.sim.disruptions import DrainWindow
        from repro.sim.simulator import SimulationError

        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=10.0, end=50.0, nodes=4,
                            domain="rack9"),
            )
        )
        with pytest.raises(SimulationError, match="rack9"):
            run_sim([job(1)], trace)
        # A resolvable label on the same layout constructs fine.
        ok = DisruptionTrace(
            drains=(
                DrainWindow(start=10.0, end=50.0, nodes=4,
                            domain="rack2"),
            )
        )
        run_sim([job(1)], ok)

    def test_shock_on_already_offline_node_is_pinned_noop(self):
        # Node 0 fails independently at t=50 (repairs at t=5000). A
        # shock at t=100 strikes nodes 0-3: it takes only 1-3, and its
        # repair at t=500 must NOT resurrect node 0 early.
        jobs = [job(1, submit=600.0, nodes=16, duration=100.0)]
        trace = DisruptionTrace(
            failures=(NodeFailure(50.0, 0, 5_000.0),),
            domain_failures=(
                DomainFailure(100.0, (0, 1, 2, 3), 500.0, domain="rack0"),
            ),
        )
        result = run_sim(jobs, trace)
        (rec,) = result.records
        # The full-machine job waits for node 0's own repair.
        assert rec.start_time == 5_000.0


class TestSameInstantOrdering:
    """Satellite: domain failure vs single-node restoration vs arrival.

    EventKind pins NODE_REPAIR < DOMAIN_FAILURE < ARRIVAL at equal
    timestamps; each test fails if the relative order flips.
    """

    def test_single_node_restoration_applies_before_domain_failure(self):
        # Node 0 is down and repairs at t=100 — the same instant a
        # shock strikes nodes 0-1. Repair-first means the shock takes
        # BOTH nodes (and both return at its repair time); shock-first
        # would skip node 0, leaving it online after its own repair.
        jobs = [job(1, submit=100.0, nodes=15, duration=100.0)]
        trace = DisruptionTrace(
            failures=(NodeFailure(20.0, 0, 100.0),),
            domain_failures=(
                DomainFailure(100.0, (0, 1), 800.0, domain="rack0"),
            ),
        )
        result = run_sim(jobs, trace)
        (rec,) = result.records
        # 15-node job fits only after the shock's repair restores both.
        assert rec.start_time == 800.0

    def test_domain_failure_applies_before_same_instant_arrival(self):
        # A job arriving at the exact shock instant queues against the
        # shrunken cluster.
        jobs = [job(1, submit=100.0, nodes=12, duration=100.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 900.0),
            )
        )
        result = run_sim(jobs, trace)
        (rec,) = result.records
        assert rec.start_time == 900.0

    def test_single_node_failure_strikes_before_domain_failure(self):
        # Both a node failure (node 0) and a shock (nodes 0-3) land at
        # t=100 while job 1 occupies nodes 0-3. NODE_FAILURE fires
        # first, so the kill is attributed to the independent failure
        # (domain=None), not the shock.
        jobs = [job(1, nodes=4, duration=1_000.0)]
        trace = DisruptionTrace(
            failures=(NodeFailure(100.0, 0, 2_000.0),),
            domain_failures=(
                DomainFailure(100.0, (0, 1, 2, 3), 600.0, domain="rack0"),
            ),
        )
        result = run_sim(jobs, trace)
        kills = [p for p in result.preemptions if p.reason == "failure"]
        assert len(kills) == 1
        assert kills[0].domain is None

    def test_completion_releases_before_domain_failure(self):
        # Job 1 completes at the exact instant its rack dies: the
        # completion is real (no kill), pinned by COMPLETION < kinds.
        jobs = [job(1, nodes=4, duration=100.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, (0, 1, 2, 3), 600.0, domain="rack0"),
            )
        )
        result = run_sim(jobs, trace)
        assert not result.preemptions
        (rec,) = result.records
        assert rec.end_time == 100.0


class TestBlastRadiusEndToEnd:
    def test_domain_metrics_reported_only_for_domain_traces(self):
        from repro.metrics.objectives import compute_metrics

        jobs = [job(1, nodes=4, duration=1_000.0),
                job(2, nodes=4, duration=1_000.0)]
        trace = DisruptionTrace(
            domain_failures=(
                DomainFailure(100.0, tuple(range(0, 8)), 5_000.0,
                              domain="switch0"),
            )
        )
        result = run_sim(jobs, trace)
        values = compute_metrics(result).as_dict()
        assert values["n_domain_kills"] == 2.0
        assert values["domains_hit"] == 1.0
        assert values["largest_event_loss_node_hours"] == pytest.approx(
            2 * 4 * 100.0 / 3600.0
        )
        assert result.extras["domain_kills"] == {"switch0": 2}

        plain = DisruptionTrace(failures=(NodeFailure(100.0, 0, 500.0),))
        clean = run_sim([job(1, nodes=4, duration=1_000.0)], plain)
        assert "n_domain_kills" not in compute_metrics(clean).as_dict()
        assert "domain_kills" not in clean.extras
