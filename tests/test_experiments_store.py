"""Tests for the JSONL experiment artifact store."""

import json

import pytest

from repro.experiments.runner import run_single
from repro.experiments.store import (
    SCHEMA_VERSION,
    RunStore,
    StoredRun,
    cell_key,
)


def make_stored(**overrides) -> StoredRun:
    base = dict(
        scenario="adversarial",
        n_jobs=10,
        scheduler="fcfs",
        workload_seed=0,
        scheduler_seed=0,
        metrics={"makespan": 100.0, "avg_wait_time": 3.5},
        decision_summary={"n_decisions": 11, "n_accepted": 10,
                          "n_rejected": 1, "by_kind": {"StartJob": 10}},
        overhead=None,
    )
    base.update(overrides)
    return StoredRun(**base)


class TestStoredRun:
    def test_json_round_trip(self):
        stored = make_stored()
        again = StoredRun.from_json(stored.to_json())
        assert again == stored
        assert again.key == cell_key("adversarial", 10, "fcfs", 0, 0)
        assert again.schema_version == SCHEMA_VERSION

    def test_round_trip_with_overhead(self):
        stored = make_stored(
            scheduler="claude-3.7-sim",
            overhead={"model": "claude-3.7-sim", "elapsed_s": 42.0,
                      "n_calls": 12, "latency": {"median_s": 3.5}},
        )
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_from_run_baseline(self):
        run = run_single("resource_sparse", 6, "sjf", workload_seed=3)
        stored = StoredRun.from_run(run)
        assert stored.scenario == "resource_sparse"
        assert stored.scheduler == "sjf"
        assert stored.workload_seed == 3
        assert stored.metrics == run.values
        assert stored.overhead is None
        summary = stored.decision_summary
        assert summary["n_decisions"] == len(run.result.decisions)
        assert summary["n_accepted"] + summary["n_rejected"] == (
            summary["n_decisions"]
        )
        assert sum(summary["by_kind"].values()) == summary["n_accepted"]
        # Still serializable after summarization.
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_from_run_llm_overhead(self):
        run = run_single("resource_sparse", 5, "claude-3.7-sim")
        stored = StoredRun.from_run(run)
        assert stored.overhead is not None
        assert stored.overhead["model"] == "claude-3.7-sim"
        assert stored.overhead["n_calls"] == run.overhead.n_calls
        assert stored.overhead["latency"]["n_calls"] >= 0
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_values_mirrors_experiment_run(self):
        stored = make_stored()
        assert stored.values == stored.metrics
        assert stored.values is not stored.metrics  # defensive copy

    def test_rejects_newer_schema(self):
        payload = json.loads(make_stored().to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            StoredRun.from_json(json.dumps(payload))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            StoredRun.from_json("{not json")
        with pytest.raises(ValueError):
            StoredRun.from_json('"a string"')
        with pytest.raises(ValueError):
            StoredRun.from_json('{"schema_version": 1}')


class TestRunStore:
    def test_missing_file_reads_empty(self, tmp_path):
        store = RunStore(tmp_path / "none.jsonl")
        assert store.load() == []
        assert store.completed_keys() == set()
        assert len(store) == 0

    def test_append_and_load(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        a = make_stored(scheduler="fcfs")
        b = make_stored(scheduler="sjf")
        store.append(a)
        store.append(b)
        assert store.load() == [a, b]
        assert store.completed_keys() == {a.key, b.key}
        assert a.key in store

    def test_append_coerces_experiment_run(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run = run_single("adversarial", 6, "fcfs")
        stored = store.append(run)
        assert isinstance(stored, StoredRun)
        assert store.load() == [stored]

    def test_last_write_wins_on_duplicates(self, tmp_path):
        # Re-running a sweep into the same store supersedes old lines.
        store = RunStore(tmp_path / "runs.jsonl")
        first = make_stored(metrics={"makespan": 1.0})
        second = make_stored(metrics={"makespan": 2.0})
        other = make_stored(scheduler="sjf")
        store.append(first)
        store.append(other)
        store.append(second)
        # Updated in place: first-appearance order, latest values.
        assert store.load() == [second, other]

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        good = make_stored()
        store.append(good)
        with path.open("a") as fh:
            fh.write('{"scenario": "adversarial", "n_jo')  # crash mid-write
        assert store.load() == [good]
        assert good.key in store.completed_keys()

    def test_append_after_truncated_tail_repairs_store(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        first = make_stored(scheduler="fcfs")
        store.append(first)
        with path.open("a") as fh:
            fh.write('{"scenario": "adversarial", "n_jo')  # crash mid-write
        # The next append must not glue onto the partial line.
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [first, second]
        # And later loads stay healthy (no interior corruption).
        store.append(make_stored(scheduler="easy"))
        assert len(store.load()) == 3

    def test_append_preserves_complete_tail_missing_newline(self, tmp_path):
        # A write killed between the JSON and its newline is a
        # complete run: append must restore the newline, not drop it.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        first = make_stored(scheduler="fcfs")
        with path.open("w") as fh:
            fh.write(first.to_json())  # no trailing newline
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [first, second]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored(scheduler="fcfs"))
        with path.open("a") as fh:
            fh.write("garbage\n")
        store.append(make_stored(scheduler="sjf"))
        with pytest.raises(ValueError, match="corrupt"):
            store.load()

    def test_complete_newer_schema_final_line_raises(self, tmp_path):
        # A *complete* final line from a newer code version is not a
        # truncated write: surface the upgrade error instead of
        # silently reading the store as shorter than it is.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored(scheduler="fcfs"))
        payload = json.loads(make_stored(scheduler="sjf").to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with path.open("a") as fh:
            fh.write(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            store.load()

    def test_creates_parent_directories(self, tmp_path):
        store = RunStore(tmp_path / "deep" / "nested" / "runs.jsonl")
        store.append(make_stored())
        assert len(store) == 1
