"""Tests for the JSONL experiment artifact store."""

import json

import pytest

from repro.experiments.runner import run_single
from repro.experiments.store import (
    SCHEMA_VERSION,
    FailedCell,
    FailureSidecar,
    RunStore,
    StoredRun,
    cell_key,
)


def make_stored(**overrides) -> StoredRun:
    base = dict(
        scenario="adversarial",
        n_jobs=10,
        scheduler="fcfs",
        workload_seed=0,
        scheduler_seed=0,
        metrics={"makespan": 100.0, "avg_wait_time": 3.5},
        decision_summary={"n_decisions": 11, "n_accepted": 10,
                          "n_rejected": 1, "by_kind": {"StartJob": 10}},
        overhead=None,
    )
    base.update(overrides)
    return StoredRun(**base)


class TestStoredRun:
    def test_json_round_trip(self):
        stored = make_stored()
        again = StoredRun.from_json(stored.to_json())
        assert again == stored
        assert again.key == cell_key("adversarial", 10, "fcfs", 0, 0)
        assert again.schema_version == SCHEMA_VERSION

    def test_round_trip_with_overhead(self):
        stored = make_stored(
            scheduler="claude-3.7-sim",
            overhead={"model": "claude-3.7-sim", "elapsed_s": 42.0,
                      "n_calls": 12, "latency": {"median_s": 3.5}},
        )
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_from_run_baseline(self):
        run = run_single("resource_sparse", 6, "sjf", workload_seed=3)
        stored = StoredRun.from_run(run)
        assert stored.scenario == "resource_sparse"
        assert stored.scheduler == "sjf"
        assert stored.workload_seed == 3
        assert stored.metrics == run.values
        assert stored.overhead is None
        summary = stored.decision_summary
        assert summary["n_decisions"] == len(run.result.decisions)
        assert summary["n_accepted"] + summary["n_rejected"] == (
            summary["n_decisions"]
        )
        assert sum(summary["by_kind"].values()) == summary["n_accepted"]
        # Still serializable after summarization.
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_from_run_llm_overhead(self):
        run = run_single("resource_sparse", 5, "claude-3.7-sim")
        stored = StoredRun.from_run(run)
        assert stored.overhead is not None
        assert stored.overhead["model"] == "claude-3.7-sim"
        assert stored.overhead["n_calls"] == run.overhead.n_calls
        assert stored.overhead["latency"]["n_calls"] >= 0
        assert StoredRun.from_json(stored.to_json()) == stored

    def test_values_mirrors_experiment_run(self):
        stored = make_stored()
        assert stored.values == stored.metrics
        assert stored.values is not stored.metrics  # defensive copy

    def test_rejects_newer_schema(self):
        payload = json.loads(make_stored().to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            StoredRun.from_json(json.dumps(payload))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            StoredRun.from_json("{not json")
        with pytest.raises(ValueError):
            StoredRun.from_json('"a string"')
        with pytest.raises(ValueError):
            StoredRun.from_json('{"schema_version": 1}')


class TestRunStore:
    def test_missing_file_reads_empty(self, tmp_path):
        store = RunStore(tmp_path / "none.jsonl")
        assert store.load() == []
        assert store.completed_keys() == set()
        assert len(store) == 0

    def test_append_and_load(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        a = make_stored(scheduler="fcfs")
        b = make_stored(scheduler="sjf")
        store.append(a)
        store.append(b)
        assert store.load() == [a, b]
        assert store.completed_keys() == {a.key, b.key}
        assert a.key in store

    def test_append_coerces_experiment_run(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run = run_single("adversarial", 6, "fcfs")
        stored = store.append(run)
        assert isinstance(stored, StoredRun)
        assert store.load() == [stored]

    def test_last_write_wins_on_duplicates(self, tmp_path):
        # Re-running a sweep into the same store supersedes old lines.
        store = RunStore(tmp_path / "runs.jsonl")
        first = make_stored(metrics={"makespan": 1.0})
        second = make_stored(metrics={"makespan": 2.0})
        other = make_stored(scheduler="sjf")
        store.append(first)
        store.append(other)
        store.append(second)
        # Updated in place: first-appearance order, latest values.
        assert store.load() == [second, other]

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        good = make_stored()
        store.append(good)
        with path.open("a") as fh:
            fh.write('{"scenario": "adversarial", "n_jo')  # crash mid-write
        assert store.load() == [good]
        assert good.key in store.completed_keys()

    def test_append_after_truncated_tail_repairs_store(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        first = make_stored(scheduler="fcfs")
        store.append(first)
        with path.open("a") as fh:
            fh.write('{"scenario": "adversarial", "n_jo')  # crash mid-write
        # The next append must not glue onto the partial line.
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [first, second]
        # And later loads stay healthy (no interior corruption).
        store.append(make_stored(scheduler="easy"))
        assert len(store.load()) == 3

    def test_append_preserves_complete_tail_missing_newline(self, tmp_path):
        # A write killed between the JSON and its newline is a
        # complete run: append must restore the newline, not drop it.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        first = make_stored(scheduler="fcfs")
        with path.open("w") as fh:
            fh.write(first.to_json())  # no trailing newline
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [first, second]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored(scheduler="fcfs"))
        with path.open("a") as fh:
            fh.write("garbage\n")
        store.append(make_stored(scheduler="sjf"))
        with pytest.raises(ValueError, match="corrupt"):
            store.load()

    def test_complete_newer_schema_final_line_raises(self, tmp_path):
        # A *complete* final line from a newer code version is not a
        # truncated write: surface the upgrade error instead of
        # silently reading the store as shorter than it is.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored(scheduler="fcfs"))
        payload = json.loads(make_stored(scheduler="sjf").to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with path.open("a") as fh:
            fh.write(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            store.load()

    def test_creates_parent_directories(self, tmp_path):
        store = RunStore(tmp_path / "deep" / "nested" / "runs.jsonl")
        store.append(make_stored())
        assert len(store) == 1


class TestRepairTailEdgeCases:
    """_repair_tail must survive every shape of killed-write tail."""

    def test_huge_unparseable_tail_spans_chunks(self, tmp_path):
        # The backward newline scan works in 64 KiB chunks; a partial
        # line longer than one chunk must still be found and truncated.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        first = make_stored(scheduler="fcfs")
        store.append(first)
        with path.open("a") as fh:
            fh.write('{"scenario": "x", "pad": "' + "y" * 200_000)
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [first, second]
        # The partial line is gone from disk, not merely tolerated.
        assert "yyy" not in path.read_text()

    def test_huge_parseable_tail_spans_chunks(self, tmp_path):
        # A >64 KiB COMPLETE line missing only its newline: the scan
        # must still parse it and restore the newline, losing nothing.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        big = make_stored(
            scheduler="fcfs",
            decision_summary={"pad": "x" * 200_000},
        )
        with path.open("w") as fh:
            fh.write(big.to_json())  # no trailing newline
        second = make_stored(scheduler="sjf")
        store.append(second)
        assert store.load() == [big, second]
        assert path.read_text().count("\n") == 2

    def test_file_with_no_newline_at_all_unparseable(self, tmp_path):
        # A store whose very first write was torn: no newline anywhere.
        path = tmp_path / "runs.jsonl"
        path.write_text('{"scenario": "adversar')
        store = RunStore(path)
        stored = make_stored()
        store.append(stored)
        assert store.load() == [stored]
        assert path.read_text() == stored.to_json() + "\n"

    def test_empty_file_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("")
        store = RunStore(path)
        stored = make_stored()
        store.append(stored)
        assert store.load() == [stored]


class TestLoadOnCorrupt:
    def _corrupted_store(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        good = [make_stored(scheduler="fcfs"), make_stored(scheduler="sjf")]
        store.append(good[0])
        with path.open("a") as fh:
            fh.write("#CORRUPT# definitely not json\n")
        store.append(good[1])
        return store, good

    def test_invalid_policy_rejected(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError, match="on_corrupt"):
            store.load(on_corrupt="ignore")

    def test_raise_names_file_line_and_doctor(self, tmp_path):
        store, _ = self._corrupted_store(tmp_path)
        with pytest.raises(ValueError, match=r"runs\.jsonl:2: corrupt"):
            store.load()
        with pytest.raises(ValueError, match="store doctor"):
            store.load()

    def test_quarantine_returns_parseable_runs(self, tmp_path):
        store, good = self._corrupted_store(tmp_path)
        assert store.load(on_corrupt="quarantine") == good
        # The file itself is untouched — strict load still raises.
        with pytest.raises(ValueError, match="corrupt"):
            store.load()


class TestDoctor:
    def test_healthy_store_is_a_no_op(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored())
        before = path.read_text()
        report = store.doctor()
        assert report.clean
        assert (report.n_kept, report.n_quarantined) == (1, 0)
        assert "healthy" in report.summary()
        assert path.read_text() == before
        assert not store.quarantine_path.exists()

    def test_salvages_verbatim_and_quarantines_with_line_numbers(
        self, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        a = make_stored(scheduler="fcfs")
        b = make_stored(scheduler="sjf")
        store.append(a)
        with path.open("a") as fh:
            fh.write("junk line\n")
        store.append(b)
        original_lines = [
            ln for ln in path.read_text().splitlines() if ln != "junk line"
        ]
        report = store.doctor()
        assert not report.clean
        assert (report.n_kept, report.n_quarantined) == (2, 1)
        assert report.quarantined_lines == (2,)
        # Healthy lines survive byte-for-byte, never re-serialized.
        assert path.read_text().splitlines() == original_lines
        assert store.quarantine_path.read_text() == "L2\tjunk line\n"
        assert store.load() == [a, b]

    def test_dry_run_reports_without_writing(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored())
        with path.open("a") as fh:
            fh.write("junk\n")
        before = path.read_text()
        report = store.doctor(dry_run=True)
        assert report.n_quarantined == 1
        assert "would move" in report.summary()
        assert path.read_text() == before
        assert not store.quarantine_path.exists()

    def test_quarantine_file_accumulates_across_doctors(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored())
        with path.open("a") as fh:
            fh.write("bad one\n")
        store.doctor()
        with path.open("a") as fh:
            fh.write("bad two\n")
        store.doctor()
        assert store.quarantine_path.read_text() == (
            "L2\tbad one\nL2\tbad two\n"
        )


class TestKeyIndexCache:
    def _count_parses(self, store, monkeypatch):
        calls = {"n": 0}
        real = type(store)._iter_lines

        def counting(self):
            calls["n"] += 1
            return real(self)

        monkeypatch.setattr(type(store), "_iter_lines", counting)
        return calls

    def test_membership_checks_parse_once(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "runs.jsonl")
        a = make_stored(scheduler="fcfs")
        b = make_stored(scheduler="sjf")
        store.append(a)
        store.append(b)
        calls = self._count_parses(store, monkeypatch)
        for _ in range(50):
            assert a.key in store
            assert len(store) == 2
            assert store.completed_keys() == {a.key, b.key}
        assert calls["n"] == 1

    def test_own_append_invalidates(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "runs.jsonl")
        a = make_stored(scheduler="fcfs")
        store.append(a)
        assert len(store) == 1
        b = make_stored(scheduler="sjf")
        store.append(b)
        assert len(store) == 2
        assert b.key in store

    def test_external_write_invalidates(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        writer = RunStore(path)
        reader = RunStore(path)
        a = make_stored(scheduler="fcfs")
        writer.append(a)
        assert len(reader) == 1  # reader caches here
        b = make_stored(scheduler="sjf")
        writer.append(b)  # a different RunStore instance writes
        assert len(reader) == 2
        assert b.key in reader

    def test_quarantine_load_is_not_cached_as_strict(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.append(make_stored())
        with path.open("a") as fh:
            fh.write("junk\n")
        store.append(make_stored(scheduler="sjf"))
        assert len(store.load(on_corrupt="quarantine")) == 2
        # The tolerant result must not satisfy a later strict load.
        with pytest.raises(ValueError, match="corrupt"):
            store.load()


class TestFailedCell:
    def _failed(self, **overrides):
        base = dict(
            key=cell_key("adversarial", 10, "fcfs", 0, 0),
            kind="timeout",
            error_type="TimeoutError",
            message="cell exceeded --cell-timeout",
            traceback_tail="TimeoutError: ...",
            attempts=3,
        )
        base.update(overrides)
        return FailedCell(**base)

    def test_json_round_trip(self):
        fc = self._failed()
        again = FailedCell.from_json(fc.to_json())
        assert again == fc
        assert isinstance(again.key, tuple)

    def test_label(self):
        assert self._failed().label == "adversarial/10/fcfs w0 s0"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            FailedCell.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FailedCell.from_json("[1, 2]")
        with pytest.raises(ValueError, match="missing field"):
            FailedCell.from_json('{"key": ["a", 1, "b", 0, 0]}')


class TestFailureSidecar:
    def test_for_store_path_convention(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        sidecar = FailureSidecar.for_store(store)
        assert sidecar.path == tmp_path / "runs.jsonl.failures"

    def test_missing_sidecar_loads_empty(self, tmp_path):
        assert FailureSidecar(tmp_path / "none.failures").load() == []

    def test_append_and_load_round_trip(self, tmp_path):
        sidecar = FailureSidecar(tmp_path / "deep" / "runs.jsonl.failures")
        records = [
            FailedCell(
                key=cell_key("adversarial", 10, "fcfs", 0, 0),
                kind="pool-crash",
                error_type="BrokenProcessPool",
                message="worker died",
                traceback_tail="",
                attempts=2,
            ),
            FailedCell(
                key=cell_key("resource_sparse", 6, "sjf", 1, 0),
                kind="exception",
                error_type="ValueError",
                message="boom",
                traceback_tail="ValueError: boom",
                attempts=3,
            ),
        ]
        for record in records:
            sidecar.append(record)
        assert sidecar.load() == records
