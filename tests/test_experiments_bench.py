"""Tests for the ``repro-sched bench`` harness (fast, tiny configs)."""

import json

import pytest

from repro.experiments import bench
from repro.experiments.bench import (
    BenchConfig,
    Regression,
    compare_to_baseline,
    render_report,
    run_bench,
)
from repro.experiments.cli import build_parser, main


def tiny_config() -> BenchConfig:
    return BenchConfig(
        replan_sizes=(6,),
        replan_repeats=1,
        replan_running=2,
        snapshot_jobs=30,
        per_decision_cells=(("heterogeneous_mix", "fcfs", 15),),
        sweep_scenarios=("heterogeneous_mix",),
        sweep_sizes=(8,),
        sweep_schedulers=("fcfs",),
        disruption_cell=("drain_window", "fcfs_backfill", 60),
        disruption_mtbf=20_000.0,
        disruption_mttr=400.0,
        disruption_checkpoint=300.0,
        planning_window=4,
        planning_latency_cells=((24, 10),),
        planning_quality_cells=(16,),
        planning_running=2,
        storage_cells=400,
        storage_shards=8,
        storage_queries=3,
    )


@pytest.fixture(scope="module")
def tiny_report():
    return run_bench(tiny_config())


class TestRunBench:
    def test_report_shape(self, tiny_report):
        assert tiny_report["schema"] == bench.SCHEMA_VERSION
        metrics = tiny_report["metrics"]
        assert {"replan_event", "decision_snapshot", "per_decision",
                "disruption", "sweep"} <= set(metrics)
        row = metrics["replan_event"][0]
        assert row["queue_size"] == 6
        assert row["incremental_ms"] > 0
        assert row["naive_ms"] > 0
        assert row["speedup"] > 0
        snap = metrics["decision_snapshot"]
        assert snap["n_jobs"] == 30
        assert snap["decisions"] > 0
        assert snap["us_per_decision"] > 0

    def test_render_report_mentions_sections(self, tiny_report):
        text = render_report(tiny_report)
        assert "replanning event" in text
        assert "windowed planning" in text
        assert "decision snapshots" in text
        assert "serial sweep" in text
        assert "disruption" in text
        assert "storage" in text

    def test_storage_section_shape(self, tiny_report):
        sto = tiny_report["metrics"]["storage"]
        assert sto["n_cells"] == 400
        assert sto["n_shards"] == 8
        assert sto["jsonl_query_ms"] > 0
        assert sto["sharded_query_ms"] > 0
        assert sto["query_speedup"] > 0
        assert sto["migrate_wall_s"] >= 0

    def test_disruption_section_shape(self, tiny_report):
        dis = tiny_report["metrics"]["disruption"]
        assert dis["clean_us_per_decision"] > 0
        assert dis["disrupted_us_per_decision"] > 0
        assert dis["overhead_ratio"] > 0
        assert dis["n_preemptions"] >= 0

    def test_planning_section_shape(self, tiny_report):
        planning = tiny_report["metrics"]["planning"]
        (lat,) = planning["latency"]
        assert lat["queue_size"] == 24
        assert lat["iterations"] == 10
        assert lat["window"] == 4
        assert lat["full_ms"] > 0
        assert lat["windowed_ms"] > 0
        assert lat["replan_speedup"] > 0
        # The window bounds packing work per accepted move.
        assert (
            lat["windowed_packed_jobs"] <= lat["full_packed_jobs"]
        )
        (qual,) = planning["quality"]
        assert qual["queue_size"] == 16
        assert qual["full_objective"] > 0
        assert qual["quality_ratio"] > 0

    def test_planning_metrics_flattened_with_directions(self, tiny_report):
        flat = bench._flatten(tiny_report)
        assert "planning[24@10/w4].replan_speedup" in flat
        assert "planning[24@10/w4].windowed_packed_per_move" in flat
        assert "planning_quality[16/w4].quality_ratio" in flat
        for key in flat:
            assert key.endswith(
                bench._HIGHER_IS_BETTER_SUFFIXES
            ) or key.endswith(bench._LOWER_IS_BETTER_SUFFIXES), key

    def test_dimensionless_only_comparison(self, tiny_report):
        import copy

        worse = copy.deepcopy(tiny_report)
        # Inflate an absolute timing AND a ratio.
        worse["metrics"]["per_decision"][0]["us_per_decision"] *= 10
        worse["metrics"]["disruption"]["overhead_ratio"] *= 10
        full = bench.compare_to_baseline(worse, tiny_report, threshold=0.25)
        dimensionless = bench.compare_to_baseline(
            worse, tiny_report, threshold=0.25, dimensionless_only=True
        )
        assert {r.metric for r in dimensionless} < {r.metric for r in full}
        assert all(
            r.metric.endswith(("speedup", "_ratio")) for r in dimensionless
        )
        assert any(r.metric.endswith("overhead_ratio") for r in dimensionless)

    def test_write_load_roundtrip(self, tiny_report, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        bench.write_report(tiny_report, path)
        loaded = bench.load_report(path)
        assert loaded == json.loads(json.dumps(tiny_report))

    def test_load_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999}')
        with pytest.raises(ValueError, match="schema"):
            bench.load_report(str(path))


def synthetic_report(**overrides):
    base = {
        "schema": bench.SCHEMA_VERSION,
        "metrics": {
            "replan_event": [
                {
                    "queue_size": 100,
                    "incremental_ms": 100.0,
                    "naive_ms": 500.0,
                    "speedup": 5.0,
                }
            ],
            "decision_snapshot": {
                "n_jobs": 2000,
                "decisions": 6000,
                "wall_s": 0.3,
                "us_per_decision": 50.0,
                "first_quartile_us": 50.0,
                "last_quartile_us": 50.0,
                "growth_ratio": 1.0,
            },
            "per_decision": [
                {
                    "scenario": "heterogeneous_mix",
                    "scheduler": "fcfs",
                    "n_jobs": 400,
                    "decisions": 1200,
                    "wall_s": 0.04,
                    "us_per_decision": 30.0,
                }
            ],
            "sweep": {"cells": 6, "wall_s": 2.0},
            "storage": {
                "n_cells": 100000,
                "n_shards": 64,
                "n_queries": 5,
                "migrate_wall_s": 2.0,
                "jsonl_query_ms": 1600.0,
                "sharded_query_ms": 20.0,
                "query_speedup": 80.0,
            },
        },
    }
    for path, value in overrides.items():
        section, key = path.split(".")
        target = base["metrics"][section]
        if isinstance(target, list):
            target[0][key] = value
        else:
            target[key] = value
    return base


class TestCompareToBaseline:
    def test_no_regressions_when_identical(self):
        assert compare_to_baseline(synthetic_report(), synthetic_report()) == []

    def test_latency_regression_detected(self):
        current = synthetic_report(**{"replan_event.incremental_ms": 200.0})
        regs = compare_to_baseline(current, synthetic_report())
        assert any("incremental_ms" in r.metric for r in regs)
        reg = next(r for r in regs if "incremental_ms" in r.metric)
        assert reg.change == pytest.approx(1.0)
        assert "worse" in reg.describe()

    def test_speedup_drop_detected_as_higher_is_better(self):
        current = synthetic_report(**{"replan_event.speedup": 2.0})
        regs = compare_to_baseline(current, synthetic_report())
        assert any(r.metric.endswith("speedup") for r in regs)

    def test_per_decision_latency_regression_detected(self):
        current = synthetic_report(
            **{
                "per_decision.us_per_decision": 300.0,
                "decision_snapshot.us_per_decision": 500.0,
            }
        )
        regs = compare_to_baseline(current, synthetic_report())
        assert sum("us_per_decision" in r.metric for r in regs) == 2

    def test_every_flattened_metric_has_a_direction(self):
        # Guards against adding a metric that the regression check
        # silently skips (neither suffix list matches its key).
        flat = bench._flatten(synthetic_report())
        assert flat
        for key in flat:
            assert key.endswith(
                bench._HIGHER_IS_BETTER_SUFFIXES
            ) or key.endswith(bench._LOWER_IS_BETTER_SUFFIXES), key

    def test_improvements_are_not_regressions(self):
        current = synthetic_report(
            **{
                "replan_event.incremental_ms": 10.0,
                "replan_event.speedup": 50.0,
                "sweep.wall_s": 0.5,
            }
        )
        assert compare_to_baseline(current, synthetic_report()) == []

    def test_within_threshold_tolerated(self):
        current = synthetic_report(**{"sweep.wall_s": 2.4})  # +20% < 25%
        assert compare_to_baseline(current, synthetic_report()) == []

    def test_missing_keys_ignored(self):
        current = synthetic_report()
        del current["metrics"]["sweep"]["wall_s"]
        baseline = synthetic_report(**{"sweep.wall_s": 0.001})
        assert compare_to_baseline(current, baseline) == []

    def test_regression_dataclass_fields(self):
        reg = Regression(
            metric="sweep.wall_s", baseline=1.0, current=2.0, change=1.0
        )
        assert "sweep.wall_s" in reg.describe()


class TestCliWiring:
    def test_bench_subcommand_parses(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--json", "out.json",
             "--baseline", "base.json", "--threshold", "0.5"]
        )
        assert args.command == "bench"
        assert args.quick
        assert args.json == "out.json"
        assert args.baseline == "base.json"
        assert args.threshold == 0.5

    def test_bench_regression_warning_path(self, tmp_path, capsys, monkeypatch):
        # Exercise the baseline-comparison branch without running a
        # real bench: patch run_bench to return a canned report.
        current = synthetic_report(**{"sweep.wall_s": 10.0})
        current["quick"] = True
        current["python"] = "3.x"

        monkeypatch.setattr(
            bench, "run_bench",
            lambda quick, sections=None, progress=None: current,
        )
        baseline_path = tmp_path / "BENCH_base.json"
        base = synthetic_report()
        base["quick"] = True
        base["python"] = "3.x"
        baseline_path.write_text(json.dumps(base))
        monkeypatch.setenv("GITHUB_ACTIONS", "1")

        rc = main(["bench", "--quick", "--baseline", str(baseline_path)])
        out = capsys.readouterr().out
        assert rc == 0  # regressions never fail the command
        assert "WARNING" in out
        assert "::warning" in out
        assert "wall_s" in out
