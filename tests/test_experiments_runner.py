"""Unit tests for the experiment runner."""

import pytest

from repro.experiments.runner import (
    DEFAULT_SCHEDULERS,
    OverheadSummary,
    run_matrix,
    run_single,
)
from repro.sim.cluster import ResourcePool
from repro.workloads.generator import generate_workload


class TestRunSingle:
    def test_baseline_run_has_no_overhead(self):
        run = run_single("resource_sparse", 10, "fcfs", workload_seed=0)
        assert run.overhead is None
        assert run.n_jobs == 10
        assert set(run.values) == {
            "makespan", "avg_wait_time", "avg_turnaround_time", "throughput",
            "node_utilization", "memory_utilization", "wait_fairness",
            "user_fairness",
        }

    def test_llm_run_has_overhead(self):
        run = run_single("resource_sparse", 8, "claude-3.7-sim", workload_seed=0)
        assert isinstance(run.overhead, OverheadSummary)
        assert run.overhead.n_accepted_placements == 8
        assert run.overhead.elapsed_s > 0
        assert run.overhead.model == "claude-3.7-sim"

    def test_jobs_override(self):
        jobs = generate_workload("adversarial", 5, seed=3)
        run = run_single("adversarial", 5, "fcfs", jobs=jobs)
        assert run.n_jobs == 5

    def test_cluster_override(self):
        run = run_single(
            "resource_sparse", 5, "fcfs",
            cluster=ResourcePool(total_nodes=16, total_memory_gb=128.0),
        )
        assert run.result.total_nodes == 16

    def test_deterministic(self):
        a = run_single("heterogeneous_mix", 20, "ortools_like", workload_seed=1, scheduler_seed=2)
        b = run_single("heterogeneous_mix", 20, "ortools_like", workload_seed=1, scheduler_seed=2)
        assert a.values == b.values

    def test_arrival_mode_zero(self):
        run = run_single(
            "heterogeneous_mix", 10, "fcfs", workload_seed=0, arrival_mode="zero"
        )
        arrays = run.result.to_arrays()
        assert (arrays["submit"] == 0.0).all()

    def test_enforce_walltime_reaches_simulator(self):
        from tests.conftest import make_job

        jobs = [make_job(1, duration=100.0, walltime=30.0)]
        lenient = run_single("adversarial", 1, "fcfs", jobs=jobs)
        strict = run_single(
            "adversarial", 1, "fcfs", jobs=jobs, enforce_walltime=True
        )
        assert not lenient.result.record_for(1).killed
        rec = strict.result.record_for(1)
        assert rec.killed
        assert rec.end_time == 30.0

    def test_arrival_mode_label_forwarded(self):
        run = run_single(
            "adversarial", 5, "fcfs", arrival_mode="zero"
        )
        assert run.arrival_mode == "zero"
        matrix = run_matrix(
            ["adversarial"], [5], ["fcfs"], arrival_mode="zero"
        )
        assert matrix[0].arrival_mode == "zero"

    def test_max_decisions_reaches_simulator(self):
        from repro.sim.simulator import SimulationError

        with pytest.raises(SimulationError, match="decision budget"):
            run_single("adversarial", 8, "fcfs", max_decisions=2)


class TestRunMatrix:
    def test_shape(self):
        runs = run_matrix(
            ["resource_sparse", "adversarial"], [5, 10], ["fcfs", "sjf"],
        )
        assert len(runs) == 2 * 2 * 2

    def test_same_instance_across_schedulers(self):
        runs = run_matrix(["resource_sparse"], [6], ["fcfs", "sjf"])
        fcfs, sjf = runs
        a = fcfs.result.to_arrays()
        b = sjf.result.to_arrays()
        # Same workload instance: identical submit times and demands.
        assert sorted(a["submit"]) == sorted(b["submit"])

    def test_default_schedulers_match_paper(self):
        assert DEFAULT_SCHEDULERS == (
            "fcfs", "sjf", "ortools_like", "claude-3.7-sim", "o4-mini-sim",
        )


class TestOverheadAccounting:
    def test_rejected_calls_excluded_from_elapsed(self):
        run = run_single(
            "heterogeneous_mix", 15, "o4-mini-sim",
            workload_seed=2, scheduler_seed=0,
        )
        ov = run.overhead
        assert ov is not None
        total_all = sum(ov.all_call_latencies)
        assert ov.elapsed_s <= total_all
        assert ov.n_calls >= ov.n_accepted_placements
