"""Unit tests for the scratchpad memory."""

import pytest

from repro.core.scratchpad import Scratchpad


class TestAppendAndRender:
    def test_empty_renders_placeholder(self):
        assert Scratchpad().render() == "(nothing yet)"

    def test_entry_rendering(self):
        pad = Scratchpad()
        pad.append(0.0, "reasoning here", "StartJob(job_id=1)")
        text = pad.render()
        assert "[t=0] Thought: reasoning here" in text
        assert "[t=0] Action: StartJob(job_id=1)" in text

    def test_feedback_rendered(self):
        pad = Scratchpad()
        pad.append(5.0, "", "StartJob(job_id=2)", feedback="not enough nodes")
        assert "Feedback: not enough nodes" in pad.render()

    def test_thought_truncated_to_first_line(self):
        pad = Scratchpad()
        pad.append(0.0, "first line\nsecond line", "Delay")
        text = pad.render()
        assert "first line" in text
        assert "second line" not in text

    def test_window_limits_rendering(self):
        pad = Scratchpad(window=3)
        for i in range(10):
            pad.append(float(i), f"thought {i}", "Delay")
        text = pad.render()
        assert "(7 earlier entries omitted)" in text
        assert "thought 9" in text
        assert "thought 5" not in text

    def test_unbounded_window(self):
        pad = Scratchpad(window=None)
        for i in range(10):
            pad.append(float(i), f"thought {i}", "Delay")
        text = pad.render()
        assert "omitted" not in text
        assert "thought 0" in text

    def test_full_history_retained_despite_window(self):
        pad = Scratchpad(window=2)
        for i in range(5):
            pad.append(float(i), "", "Delay")
        assert len(pad) == 5


class TestFeedback:
    def test_attach_feedback_to_last(self):
        pad = Scratchpad()
        pad.append(0.0, "t", "StartJob(job_id=1)")
        pad.attach_feedback("rejected")
        assert pad.entries[-1].feedback == "rejected"

    def test_attach_feedback_empty_raises(self):
        with pytest.raises(RuntimeError):
            Scratchpad().attach_feedback("x")

    def test_recent_feedback_filters_by_time(self):
        pad = Scratchpad()
        pad.append(0.0, "", "StartJob(job_id=1)", feedback="old")
        pad.append(10.0, "", "StartJob(job_id=2)", feedback="new")
        pad.append(10.0, "", "Delay")
        recent = pad.recent_feedback(10.0)
        assert len(recent) == 1
        assert recent[0].feedback == "new"


class TestMisc:
    def test_clear(self):
        pad = Scratchpad()
        pad.append(0.0, "", "Delay")
        pad.clear()
        assert len(pad) == 0
        assert pad.render() == "(nothing yet)"

    def test_iter(self):
        pad = Scratchpad()
        pad.append(0.0, "", "Delay")
        pad.append(1.0, "", "Stop")
        assert [e.action_text for e in pad] == ["Delay", "Stop"]
