"""Unit tests for the cluster resource models."""

import pytest

from repro.sim.cluster import AllocationError, NodeLevelCluster, ResourcePool

from tests.conftest import make_job


class TestResourcePoolBasics:
    def test_defaults_match_paper(self):
        pool = ResourcePool()
        assert pool.total_nodes == 256
        assert pool.total_memory_gb == 2048.0

    def test_initially_idle(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        assert pool.free_nodes == 8
        assert pool.free_memory_gb == 64.0
        assert pool.used_nodes == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(total_nodes=0)
        with pytest.raises(ValueError):
            ResourcePool(total_memory_gb=-1.0)


class TestAllocation:
    def test_allocate_reduces_free(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        pool.allocate(make_job(1, nodes=3, memory=16.0))
        assert pool.free_nodes == 5
        assert pool.free_memory_gb == 48.0
        assert pool.running_job_ids == [1]

    def test_release_restores(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        pool.allocate(make_job(1, nodes=3, memory=16.0))
        pool.release(1)
        assert pool.free_nodes == 8
        assert pool.free_memory_gb == 64.0
        assert pool.running_job_ids == []

    def test_can_fit_checks_both_dimensions(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        assert pool.can_fit(make_job(1, nodes=8, memory=64.0))
        assert not pool.can_fit(make_job(2, nodes=9, memory=1.0))
        assert not pool.can_fit(make_job(3, nodes=1, memory=65.0))

    def test_allocate_infeasible_raises(self):
        pool = ResourcePool(total_nodes=2, total_memory_gb=8.0)
        with pytest.raises(AllocationError, match="needs"):
            pool.allocate(make_job(1, nodes=4, memory=1.0))

    def test_double_allocate_raises(self):
        pool = ResourcePool()
        pool.allocate(make_job(1))
        with pytest.raises(AllocationError, match="already allocated"):
            pool.allocate(make_job(1))

    def test_release_unknown_raises(self):
        with pytest.raises(AllocationError, match="no allocation"):
            ResourcePool().release(99)

    def test_fits_empty_vs_can_fit(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        big = make_job(1, nodes=8, memory=64.0)
        pool.allocate(make_job(2, nodes=1, memory=1.0))
        assert pool.fits_empty(big)
        assert not pool.can_fit(big)


class TestUtilization:
    def test_utilization_fractions(self):
        pool = ResourcePool(total_nodes=10, total_memory_gb=100.0)
        pool.allocate(make_job(1, nodes=5, memory=25.0))
        assert pool.node_utilization() == pytest.approx(0.5)
        assert pool.memory_utilization() == pytest.approx(0.25)

    def test_snapshot_keys(self):
        snap = ResourcePool().snapshot()
        assert snap["free_nodes"] == 256
        assert snap["used_memory_gb"] == 0.0

    def test_reset(self):
        pool = ResourcePool()
        pool.allocate(make_job(1, nodes=10, memory=10.0))
        pool.reset()
        assert pool.free_nodes == 256
        assert pool.running_job_ids == []


class TestNodeLevelCluster:
    def test_aggregate_capacity(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        assert cluster.total_nodes == 4
        assert cluster.total_memory_gb == 32.0

    def test_allocate_marks_nodes(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=2, memory=8.0))
        assert cluster.free_nodes == 2
        assert len(cluster.placement_of(1)) == 2

    def test_first_fit_picks_lowest_indices(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=2, memory=4.0))
        assert list(cluster.placement_of(1)) == [0, 1]
        cluster.allocate(make_job(2, nodes=1, memory=4.0))
        assert list(cluster.placement_of(2)) == [2]

    def test_release_restores_nodes(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=3, memory=6.0))
        cluster.release(1)
        assert cluster.free_nodes == 4
        assert cluster.free_memory_gb == pytest.approx(32.0)

    def test_per_node_memory_constraint(self):
        # 4 nodes × 8 GB each: a 1-node 16 GB job can never run even
        # though aggregate memory suffices.
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        job = make_job(1, nodes=1, memory=16.0)
        assert not cluster.can_fit(job)
        assert not cluster.fits_empty(job)
        # The aggregate model would accept it — the models differ here.
        assert ResourcePool(total_nodes=4, total_memory_gb=32.0).can_fit(job)

    def test_memory_spread_across_nodes(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        # 2 nodes × 8 GB/node needed; 16 GB over 2 nodes fits exactly.
        assert cluster.can_fit(make_job(1, nodes=2, memory=16.0))

    def test_nodes_are_exclusive(self):
        # Node allocation is exclusive: once a job owns a node, no other
        # job can run there regardless of leftover memory.
        cluster = NodeLevelCluster(node_count=2, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=2, memory=2.0))
        assert cluster.free_nodes == 0
        assert not cluster.can_fit(make_job(2, nodes=1, memory=1.0))

    def test_partial_allocation_leaves_free_nodes(self):
        cluster = NodeLevelCluster(node_count=2, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=1, memory=8.0))
        # Per-node demand above capacity never fits the free node...
        assert not cluster.can_fit(make_job(2, nodes=1, memory=10.0))
        # ...but a full-node memory demand does.
        assert cluster.can_fit(make_job(3, nodes=1, memory=8.0))

    def test_double_allocate_raises(self):
        cluster = NodeLevelCluster(node_count=4)
        cluster.allocate(make_job(1, nodes=1, memory=1.0))
        with pytest.raises(AllocationError):
            cluster.allocate(make_job(1, nodes=1, memory=1.0))

    def test_release_unknown_raises(self):
        with pytest.raises(AllocationError):
            NodeLevelCluster(node_count=4).release(5)

    def test_reset(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=4, memory=32.0))
        cluster.reset()
        assert cluster.free_nodes == 4
        assert cluster.free_memory_gb == pytest.approx(32.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeLevelCluster(node_count=0)
        with pytest.raises(ValueError):
            NodeLevelCluster(memory_per_node_gb=0.0)


class TestNodeLevelSnapshot:
    def test_snapshot_tracks_usage(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        cluster.allocate(make_job(1, nodes=3, memory=6.0))
        snap = cluster.snapshot()
        assert snap["total_nodes"] == 4
        assert snap["total_memory_gb"] == pytest.approx(32.0)
        assert snap["free_nodes"] == 1
        assert snap["used_nodes"] == 3
        # Nodes are exclusive, so memory accounting is whole-node.
        assert snap["used_memory_gb"] == pytest.approx(24.0)
        assert snap["free_memory_gb"] == pytest.approx(8.0)
        cluster.release(1)
        assert cluster.snapshot()["used_nodes"] == 0
