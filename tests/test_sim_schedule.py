"""Unit tests for schedule records and results."""

import numpy as np
import pytest

from repro.sim.actions import Delay, StartJob
from repro.sim.constraints import Violation, ViolationKind
from repro.sim.schedule import DecisionRecord, JobRecord, ScheduleResult

from tests.conftest import make_job


def record(job_id=1, *, submit=0.0, start=10.0, dur=5.0, nodes=2, mem=8.0, user="u0"):
    job = make_job(job_id, submit=submit, duration=dur, nodes=nodes, memory=mem, user=user)
    return JobRecord(job, start, start + dur)


class TestJobRecord:
    def test_wait_and_turnaround(self):
        rec = record(submit=5.0, start=15.0, dur=10.0)
        assert rec.wait_time == 10.0
        assert rec.turnaround_time == 20.0

    def test_start_before_submit_rejected(self):
        job = make_job(1, submit=100.0)
        with pytest.raises(ValueError, match="before"):
            JobRecord(job, 50.0, 150.0)

    def test_end_before_start_rejected(self):
        job = make_job(1)
        with pytest.raises(ValueError, match="ended before"):
            JobRecord(job, 10.0, 5.0)


def result_with(records, nodes=256, mem=2048.0):
    return ScheduleResult(
        records=records,
        decisions=[],
        total_nodes=nodes,
        total_memory_gb=mem,
        scheduler_name="test",
    )


class TestScheduleResult:
    def test_makespan_from_earliest_submit(self):
        res = result_with([
            record(1, submit=10.0, start=10.0, dur=5.0),
            record(2, submit=0.0, start=0.0, dur=30.0),
        ])
        assert res.makespan == 30.0

    def test_empty_result(self):
        res = result_with([])
        assert res.makespan == 0.0
        assert res.n_jobs == 0
        assert res.max_concurrent_usage() == (0.0, 0.0)

    def test_to_arrays_contents(self):
        res = result_with([record(1, start=10.0, dur=5.0, nodes=3, mem=12.0)])
        arrays = res.to_arrays()
        assert arrays["start"][0] == 10.0
        assert arrays["nodes"][0] == 3
        assert arrays["wait"][0] == 10.0
        assert arrays["turnaround"][0] == 15.0
        assert arrays["user"][0] == "u0"
        assert arrays["job_id"].dtype == np.int64

    def test_record_for(self):
        res = result_with([record(1), record(2)])
        assert res.record_for(2).job.job_id == 2
        with pytest.raises(KeyError):
            res.record_for(3)

    def test_accepted_placements_filter(self):
        res = result_with([])
        res.decisions.extend([
            DecisionRecord(0.0, StartJob(1), accepted=True),
            DecisionRecord(0.0, Delay, accepted=True),
            DecisionRecord(
                0.0,
                StartJob(2),
                accepted=False,
                violations=(Violation(ViolationKind.NOT_QUEUED, 2),),
            ),
        ])
        assert len(res.accepted_placements) == 1
        assert len(res.rejected_decisions) == 1


class TestCapacityVerification:
    def test_peak_usage_overlapping(self):
        res = result_with([
            record(1, start=0.0, dur=10.0, nodes=4),
            record(2, start=5.0, dur=10.0, nodes=4),
            record(3, start=20.0, dur=5.0, nodes=4),
        ])
        peak_nodes, _ = res.max_concurrent_usage()
        assert peak_nodes == 8.0

    def test_back_to_back_not_concurrent(self):
        # Job 2 starts exactly when job 1 ends: half-open intervals.
        res = result_with([
            record(1, start=0.0, dur=10.0, nodes=4),
            record(2, start=10.0, dur=10.0, nodes=4),
        ])
        peak_nodes, _ = res.max_concurrent_usage()
        assert peak_nodes == 4.0

    def test_verify_capacity_passes(self):
        res = result_with(
            [record(1, nodes=4), record(2, nodes=4)], nodes=8, mem=64.0
        )
        res.verify_capacity()

    def test_verify_capacity_detects_violation(self):
        res = result_with(
            [
                record(1, start=0.0, dur=10.0, nodes=6),
                record(2, start=5.0, dur=10.0, nodes=6),
            ],
            nodes=8,
            mem=64.0,
        )
        with pytest.raises(AssertionError, match="node capacity"):
            res.verify_capacity()

    def test_verify_memory_violation(self):
        res = result_with(
            [
                record(1, start=0.0, dur=10.0, nodes=1, mem=40.0),
                record(2, start=0.0, dur=10.0, nodes=1, mem=40.0),
            ],
            nodes=8,
            mem=64.0,
        )
        with pytest.raises(AssertionError, match="memory capacity"):
            res.verify_capacity()
