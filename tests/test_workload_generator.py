"""Unit tests for workload generation."""

import pytest

from repro.workloads.generator import generate_workload, workload_heterogeneity
from repro.workloads.scenarios import SCENARIOS

from tests.conftest import make_job


class TestGenerateWorkload:
    def test_count_and_ids(self):
        jobs = generate_workload("homogeneous_short", 25, seed=0)
        assert len(jobs) == 25
        assert sorted(j.job_id for j in jobs) == list(range(1, 26))

    def test_sorted_by_submit_time(self):
        jobs = generate_workload("heterogeneous_mix", 50, seed=1)
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_deterministic_under_seed(self):
        a = generate_workload("bursty_idle", 30, seed=42)
        b = generate_workload("bursty_idle", 30, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_workload("heterogeneous_mix", 30, seed=1)
        b = generate_workload("heterogeneous_mix", 30, seed=2)
        assert a != b

    def test_zero_arrival_mode(self):
        jobs = generate_workload("heterogeneous_mix", 10, seed=0, arrival_mode="zero")
        assert all(j.submit_time == 0.0 for j in jobs)

    def test_scenario_arrival_mode_spreads(self):
        jobs = generate_workload("heterogeneous_mix", 10, seed=0)
        assert jobs[-1].submit_time > 0.0

    def test_user_pool_respected(self):
        jobs = generate_workload("resource_sparse", 100, seed=0, user_pool=3)
        users = {j.user for j in jobs}
        assert users <= {"user_0", "user_1", "user_2"}
        assert len(users) > 1

    def test_scenario_object_accepted(self):
        jobs = generate_workload(SCENARIOS["adversarial"], 5, seed=0)
        assert len(jobs) == 5

    def test_empty(self):
        assert generate_workload("adversarial", 0, seed=0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            generate_workload("adversarial", -1, seed=0)

    def test_names_carry_scenario(self):
        jobs = generate_workload("high_parallelism", 3, seed=0)
        assert all(j.name.startswith("high_parallelism_") for j in jobs)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_jobs_fit_cluster(self, name):
        jobs = generate_workload(name, 60, seed=3)
        assert all(j.nodes <= 256 and j.memory_gb <= 2048.0 for j in jobs)


class TestHeterogeneity:
    def test_uniform_workload_scores_low(self):
        jobs = [make_job(i, duration=100.0, nodes=2, memory=4.0) for i in range(1, 20)]
        assert workload_heterogeneity(jobs) == pytest.approx(0.0, abs=1e-9)

    def test_single_job_scores_zero(self):
        assert workload_heterogeneity([make_job(1)]) == 0.0
        assert workload_heterogeneity([]) == 0.0

    def test_heterogeneous_scores_high(self):
        jobs = generate_workload("heterogeneous_mix", 60, seed=0)
        assert workload_heterogeneity(jobs) > 0.7

    def test_bounded(self):
        for name in SCENARIOS:
            jobs = generate_workload(name, 40, seed=5)
            assert 0.0 <= workload_heterogeneity(jobs) <= 1.0
