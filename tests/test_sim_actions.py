"""Unit tests for the action vocabulary."""

import pytest

from repro.sim.actions import (
    Action,
    ActionKind,
    BackfillJob,
    Delay,
    StartJob,
    Stop,
)


class TestConstruction:
    def test_start_job(self):
        action = StartJob(7)
        assert action.kind is ActionKind.START
        assert action.job_id == 7
        assert action.places_job

    def test_backfill_job(self):
        action = BackfillJob(3)
        assert action.kind is ActionKind.BACKFILL
        assert action.places_job

    def test_delay_and_stop_take_no_job(self):
        assert Delay.job_id is None
        assert Stop.job_id is None
        assert not Delay.places_job
        assert not Stop.places_job

    def test_start_requires_job_id(self):
        with pytest.raises(ValueError, match="requires a job_id"):
            Action(ActionKind.START)

    def test_delay_rejects_job_id(self):
        with pytest.raises(ValueError, match="takes no job_id"):
            Action(ActionKind.DELAY, job_id=1)


class TestRendering:
    def test_start_render(self):
        assert StartJob(9).render() == "StartJob(job_id=9)"

    def test_backfill_render(self):
        assert BackfillJob(40).render() == "BackfillJob(job_id=40)"

    def test_delay_render(self):
        assert Delay.render() == "Delay"

    def test_stop_render(self):
        assert Stop.render() == "Stop"

    def test_str_matches_render(self):
        assert str(StartJob(2)) == StartJob(2).render()


class TestEquality:
    def test_actions_compare_by_value(self):
        assert StartJob(1) == StartJob(1)
        assert StartJob(1) != StartJob(2)
        assert StartJob(1) != BackfillJob(1)
