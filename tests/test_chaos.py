"""Chaos tests: the fault-tolerant sweep engine under injected
crashes, hangs, and store corruption.

Every test asserts the same invariant from a different angle: whatever
the injected failure, the recovered store is line-identical to an
undisturbed serial run (or, for permanent failures, a clean subset of
one plus a structured quarantine record). Injection is deterministic
(see :mod:`repro.experiments.faultinject`), so these tests are not
flaky-by-design — the same cells fail on the same attempts every run.
"""

import time

import pytest

from repro.experiments import faultinject
from repro.experiments.cli import main
from repro.experiments.faultinject import FaultPlan, FaultRule, install
from repro.experiments.parallel import (
    CellFailedError,
    expand_cells,
    run_cells,
)
from repro.experiments.store import FailedCell, FailureSidecar, RunStore

SCENARIOS = ("adversarial", "resource_sparse")
SIZES = (6,)
SCHEDULERS = ("fcfs", "sjf")

# Canonical key strings of the four cells, in sweep order.
K_ADV_FCFS = "adversarial|6|fcfs|0|0|scenario|none|flat"
K_ADV_SJF = "adversarial|6|sjf|0|0|scenario|none|flat"
K_RS_FCFS = "resource_sparse|6|fcfs|0|0|scenario|none|flat"
K_RS_SJF = "resource_sparse|6|sjf|0|0|scenario|none|flat"


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


def _cells():
    return expand_cells(SCENARIOS, SIZES, SCHEDULERS)


def _lines(path):
    return sorted(path.read_text().strip().splitlines())


@pytest.fixture(scope="module")
def reference_lines(tmp_path_factory):
    """Store lines from an undisturbed serial sweep — ground truth."""
    install(None)
    path = tmp_path_factory.mktemp("ref") / "ref.jsonl"
    run_cells(_cells(), workers=1, store=path)
    return _lines(path)


class TestCrashRecovery:
    def test_raise_mode_crashes_are_retried_to_identical_store(
        self, tmp_path, reference_lines
    ):
        install(FaultPlan(rules=(FaultRule(kind="crash", match="|sjf|"),)))
        store = tmp_path / "runs.jsonl"
        runs = run_cells(
            _cells(), workers=2, store=store, retry_backoff_s=0.0
        )
        assert len(runs) == 4
        assert _lines(store) == reference_lines

    def test_exit_mode_pool_break_is_survived(
        self, tmp_path, reference_lines
    ):
        # os._exit in a worker breaks the whole pool (OOM-kill model);
        # the engine must rebuild it and resubmit unfinished cells.
        install(
            FaultPlan(
                rules=(
                    FaultRule(kind="crash", mode="exit", match=K_ADV_SJF),
                )
            )
        )
        store = tmp_path / "runs.jsonl"
        runs = run_cells(
            _cells(), workers=2, store=store, retry_backoff_s=0.0
        )
        assert len(runs) == 4
        assert _lines(store) == reference_lines

    def test_retried_cells_are_bit_identical(
        self, tmp_path, reference_lines
    ):
        # Injure the first attempt of EVERY cell: the entire sweep is
        # produced by retries, and must still match ground truth.
        install(FaultPlan(rules=(FaultRule(kind="crash"),)))
        store = tmp_path / "runs.jsonl"
        run_cells(
            _cells(), workers=1, store=store,
            max_retries=1, retry_backoff_s=0.0,
        )
        assert _lines(store) == reference_lines


class TestWatchdog:
    def test_hung_worker_is_killed_and_cell_rescheduled(
        self, tmp_path, reference_lines
    ):
        install(
            FaultPlan(
                rules=(
                    FaultRule(kind="hang", hang_s=60.0, match=K_RS_FCFS),
                )
            )
        )
        store = tmp_path / "runs.jsonl"
        t0 = time.monotonic()
        runs = run_cells(
            _cells(), workers=2, store=store,
            cell_timeout=1.0, retry_backoff_s=0.0,
        )
        elapsed = time.monotonic() - t0
        assert len(runs) == 4
        assert elapsed < 30.0  # nowhere near the 60 s hang
        assert _lines(store) == reference_lines


class TestStoreFaults:
    def test_torn_tail_write_is_recovered_by_resume(
        self, tmp_path, reference_lines
    ):
        # Tear the LAST cell's line (workers=1 writes in sweep order),
        # modeling a process killed mid-append.
        install(
            FaultPlan(rules=(FaultRule(kind="torn_write", match=K_RS_SJF),))
        )
        store_path = tmp_path / "runs.jsonl"
        run_cells(_cells(), workers=1, store=store_path)
        store = RunStore(store_path)
        assert len(store.load()) == 3  # truncated tail tolerated
        install(None)  # the "restarted" process has no injection
        runs = run_cells(_cells(), workers=1, store=store, resume=True)
        assert len(runs) == 1  # only the torn cell re-ran
        assert _lines(store_path) == reference_lines

    def test_interior_corruption_doctor_then_resume(
        self, tmp_path, reference_lines
    ):
        # Corrupt the FIRST cell's line: interior damage once the other
        # three lines land after it.
        install(
            FaultPlan(
                rules=(FaultRule(kind="corrupt_write", match=K_ADV_FCFS),)
            )
        )
        store_path = tmp_path / "runs.jsonl"
        run_cells(_cells(), workers=1, store=store_path)
        store = RunStore(store_path)
        with pytest.raises(ValueError, match="store doctor"):
            store.load()
        assert len(store.load(on_corrupt="quarantine")) == 3
        report = store.doctor()
        assert (report.n_kept, report.n_quarantined) == (3, 1)
        assert store.quarantine_path.exists()
        install(None)
        runs = run_cells(_cells(), workers=1, store=store, resume=True)
        assert len(runs) == 1
        assert _lines(store_path) == reference_lines


class TestGracefulDegradation:
    def _permafail_plan(self):
        # max_attempt high enough that every retry fails too.
        return FaultPlan(
            rules=(
                FaultRule(kind="crash", match=K_RS_FCFS, max_attempt=99),
            )
        )

    def test_quarantine_mode_completes_the_rest(
        self, tmp_path, reference_lines
    ):
        install(self._permafail_plan())
        store_path = tmp_path / "runs.jsonl"
        failures: list[FailedCell] = []
        runs = run_cells(
            _cells(), workers=1, store=store_path,
            max_retries=1, retry_backoff_s=0.0,
            on_cell_failure="quarantine", failures=failures,
        )
        assert len(runs) == 3
        assert len(failures) == 1
        fc = failures[0]
        assert fc.kind == "exception"
        assert fc.error_type == "InjectedCrash"
        assert fc.attempts == 2  # first try + one retry
        assert "injected worker crash" in fc.message
        assert fc.label == "resource_sparse/6/fcfs w0 s0"
        # Sidecar holds the same record, and the store holds only the
        # healthy cells — a strict subset of ground truth.
        sidecar = FailureSidecar.for_store(RunStore(store_path))
        loaded = sidecar.load()
        assert len(loaded) == 1
        assert loaded[0].key == fc.key
        assert set(_lines(store_path)) < set(reference_lines)

    def test_abort_mode_raises_with_attempt_count(self, tmp_path):
        install(self._permafail_plan())
        with pytest.raises(CellFailedError, match=r"after 1 attempt"):
            run_cells(
                _cells(), workers=1, store=tmp_path / "runs.jsonl",
                max_retries=0,
            )

    def test_pooled_abort_reports_completion_counts(self, tmp_path):
        install(self._permafail_plan())
        with pytest.raises(CellFailedError, match=r"cell\(s\) completed"):
            run_cells(
                _cells(), workers=2, store=tmp_path / "runs.jsonl",
                max_retries=0, retry_backoff_s=0.0,
            )


class TestZeroInjectionDefault:
    def test_no_plan_means_byte_identical_pooled_sweep(
        self, tmp_path, reference_lines
    ):
        store = tmp_path / "runs.jsonl"
        runs = run_cells(
            _cells(), workers=2, store=store,
            cell_timeout=120.0, retry_backoff_s=0.0,
        )
        assert len(runs) == 4
        assert _lines(store) == reference_lines


class TestChaosCLI:
    ARGV = [
        "matrix", "--scenarios", "adversarial", "resource_sparse",
        "--sizes", "6", "--schedulers", "fcfs", "sjf", "--workers", "1",
        "--max-retries", "1", "--retry-backoff", "0",
    ]

    def test_quarantine_exit_code_and_summary(self, tmp_path, capsys):
        install(
            FaultPlan(
                rules=(
                    FaultRule(kind="crash", match=K_RS_FCFS, max_attempt=99),
                )
            )
        )
        store = tmp_path / "runs.jsonl"
        rc = main(
            self.ARGV
            + ["--out", str(store), "--on-cell-failure", "quarantine"]
        )
        err = capsys.readouterr().err
        assert rc == 3
        assert "1 cell(s) quarantined after exhausting retries" in err
        assert "resource_sparse/6/fcfs w0 s0" in err
        assert "InjectedCrash" in err
        assert str(store) + ".failures" in err

    def test_abort_exit_code_and_resume_hint(self, tmp_path, capsys):
        install(
            FaultPlan(
                rules=(
                    FaultRule(kind="crash", match=K_RS_FCFS, max_attempt=99),
                )
            )
        )
        store = tmp_path / "runs.jsonl"
        rc = main(self.ARGV + ["--out", str(store)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "sweep aborted" in err
        assert "--resume" in err

    def test_doctor_salvages_corrupted_store(self, tmp_path, capsys):
        install(
            FaultPlan(
                rules=(FaultRule(kind="corrupt_write", match=K_ADV_FCFS),)
            )
        )
        store = tmp_path / "runs.jsonl"
        rc = main(self.ARGV + ["--out", str(store)])
        assert rc == 0  # the sweep itself succeeds; the damage is on disk
        install(None)
        rc = main(["store", "doctor", str(store)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "moved 1 unparseable line(s)" in out
        quarantine = tmp_path / "runs.jsonl.quarantine"
        assert quarantine.read_text().startswith("L1\t#CORRUPT#")
        # Resume completes the sweep on the doctored store.
        rc = main(self.ARGV + ["--out", str(store), "--resume"])
        assert rc == 0
        assert len(RunStore(store).load()) == 4
