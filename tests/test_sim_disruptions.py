"""Unit tests for the disruption subsystem: trace models/generators,
cluster capacity state, kill/requeue semantics, restart policies, and
the PreemptJob action."""

import numpy as np
import pytest

from repro.schedulers.base import BaseScheduler
from repro.schedulers.fcfs import EasyBackfillScheduler, FCFSScheduler
from repro.schedulers.optimizer import AnnealingOptimizer
from repro.sim.actions import Delay, PreemptJob, StartJob
from repro.sim.cluster import NodeLevelCluster, ResourcePool
from repro.sim.disruptions import (
    DISRUPTION_PRESETS,
    DisruptionSpec,
    DisruptionTrace,
    DrainWindow,
    NodeFailure,
    disruption_signature,
    estimate_horizon,
    exponential_failures,
    normalize_restart_policy,
    periodic_drains,
    weibull_failures,
)
from repro.sim.job import Job
from repro.sim.simulator import HPCSimulator, simulate


def make_jobs(specs):
    """specs: list of (job_id, submit, duration, nodes, mem)."""
    return [
        Job(job_id=j, submit_time=s, duration=d, nodes=n, memory_gb=m)
        for (j, s, d, n, m) in specs
    ]


# ---------------------------------------------------------------------------
# Models & generators
# ---------------------------------------------------------------------------

class TestTraceModels:
    def test_empty_trace_is_falsy(self):
        assert not DisruptionTrace()
        assert DisruptionTrace(
            failures=(NodeFailure(1.0, 0, 2.0),)
        )

    def test_failure_validation(self):
        with pytest.raises(ValueError, match="repair_time"):
            NodeFailure(time=5.0, node=0, repair_time=5.0)
        with pytest.raises(ValueError, match="finite"):
            NodeFailure(time=float("nan"), node=0, repair_time=1.0)

    def test_drain_validation(self):
        with pytest.raises(ValueError, match="end after"):
            DrainWindow(start=5.0, end=5.0, nodes=4)
        with pytest.raises(ValueError, match=">= 1 node"):
            DrainWindow(start=0.0, end=10.0, nodes=0)
        with pytest.raises(ValueError, match="announced after"):
            DrainWindow(start=5.0, end=10.0, nodes=1, announce_time=7.0)

    def test_drain_announce_defaults_to_start(self):
        d = DrainWindow(start=5.0, end=10.0, nodes=2)
        assert d.announce_time == 5.0

    def test_trace_sorts_and_rejects_overlapping_node_failures(self):
        a = NodeFailure(10.0, 3, 20.0)
        b = NodeFailure(5.0, 3, 9.0)
        trace = DisruptionTrace(failures=(a, b))
        assert trace.failures == (b, a)
        with pytest.raises(ValueError, match="before its previous repair"):
            DisruptionTrace(
                failures=(NodeFailure(5.0, 3, 12.0), NodeFailure(10.0, 3, 20.0))
            )

    def test_overlapping_failures_on_distinct_nodes_ok(self):
        DisruptionTrace(
            failures=(NodeFailure(5.0, 1, 12.0), NodeFailure(6.0, 2, 13.0))
        )


class TestGenerators:
    def test_exponential_deterministic(self):
        kw = dict(n_nodes=64, horizon=100_000.0, mtbf=20_000.0, mttr=500.0)
        a = exponential_failures(seed=7, **kw)
        b = exponential_failures(seed=7, **kw)
        assert a == b
        assert a != exponential_failures(seed=8, **kw)

    def test_exponential_respects_horizon_and_node_range(self):
        failures = exponential_failures(
            n_nodes=16, horizon=50_000.0, mtbf=10_000.0, mttr=100.0, seed=0
        )
        assert failures  # dense enough to produce some
        for f in failures:
            assert 0 <= f.node < 16
            assert f.time < 50_000.0
            assert f.repair_time > f.time

    def test_per_node_streams_independent_of_pool_size(self):
        """Node i's failures are identical whether the cluster has 8
        or 64 nodes — streams are spawned per node."""
        small = exponential_failures(
            n_nodes=8, horizon=80_000.0, mtbf=15_000.0, mttr=300.0, seed=3
        )
        big = exponential_failures(
            n_nodes=64, horizon=80_000.0, mtbf=15_000.0, mttr=300.0, seed=3
        )
        small_by_node = [f for f in small if f.node < 8]
        big_by_node = [f for f in big if f.node < 8]
        assert small_by_node == big_by_node

    def test_weibull_deterministic_and_valid(self):
        a = weibull_failures(
            n_nodes=32, horizon=60_000.0, mtbf=10_000.0, mttr=400.0,
            shape=1.5, seed=1,
        )
        b = weibull_failures(
            n_nodes=32, horizon=60_000.0, mtbf=10_000.0, mttr=400.0,
            shape=1.5, seed=1,
        )
        assert a == b
        DisruptionTrace(failures=a)  # validates non-overlap per node

    def test_periodic_drains(self):
        drains = periodic_drains(
            first_start=1000.0, every=5000.0, duration=600.0, nodes=8,
            horizon=12_000.0, announce_lead=500.0,
        )
        assert [d.start for d in drains] == [1000.0, 6000.0, 11_000.0]
        assert all(d.end - d.start == 600.0 for d in drains)
        assert all(d.announce_time == d.start - 500.0 for d in drains)

    def test_estimate_horizon_monotone_and_positive(self):
        jobs = make_jobs([(1, 0.0, 100.0, 4, 8.0), (2, 50.0, 200.0, 2, 4.0)])
        h = estimate_horizon(jobs, total_nodes=8)
        assert h > 250.0
        assert estimate_horizon([], 8) == 1.0


class TestSpec:
    def test_empty_spec_falsy_signature_none(self):
        spec = DisruptionSpec()
        assert not spec
        assert spec.signature() == "none"
        assert disruption_signature(spec) == "none"
        assert disruption_signature(None) == "none"

    def test_signature_includes_policy(self):
        spec = DisruptionSpec(mtbf=1000.0)
        sig = disruption_signature(spec, "checkpoint", 60.0)
        assert "policy=checkpoint" in sig and "ckpt=60" in sig
        assert disruption_signature(spec, "resubmit") != sig

    def test_build_produces_trace(self):
        spec = DisruptionSpec(mtbf=5_000.0, mttr=200.0, drain_every=20_000.0,
                              drain_nodes=4, drain_first=1_000.0)
        trace = spec.build(n_nodes=16, horizon=40_000.0)
        assert trace.failures and trace.drains
        again = spec.build(n_nodes=16, horizon=40_000.0)
        assert trace == again

    def test_drain_requires_nodes(self):
        with pytest.raises(ValueError, match="drain_nodes"):
            DisruptionSpec(drain_every=100.0)

    def test_spec_validates_eagerly(self):
        # Bad values must fail at construction (where the CLI's
        # friendly-error path catches them), not later inside build().
        with pytest.raises(ValueError, match="mtbf"):
            DisruptionSpec(mtbf=-5.0)
        with pytest.raises(ValueError, match="mttr"):
            DisruptionSpec(mtbf=100.0, mttr=0.0)
        with pytest.raises(ValueError, match="drain_duration"):
            DisruptionSpec(drain_every=100.0, drain_nodes=2,
                           drain_duration=0.0)
        with pytest.raises(ValueError, match="drain_every"):
            DisruptionSpec(drain_every=-1.0, drain_nodes=2)

    def test_ckpt_suffix_only_for_checkpointing_policies(self):
        # A resubmit run ignores the interval; appending it to the
        # signature would split physically identical cells.
        spec = DisruptionSpec(mtbf=1000.0)
        assert disruption_signature(
            spec, "resubmit", 300.0
        ) == disruption_signature(spec, "resubmit", None)
        assert "ckpt=300" in disruption_signature(spec, "checkpoint", 300.0)
        assert "ckpt=300" in disruption_signature(
            spec, "preempt-migrate", 300.0
        )

    def test_presets_build(self):
        for name, spec in DISRUPTION_PRESETS.items():
            trace = spec.build(n_nodes=256, horizon=100_000.0)
            if name == "none":
                assert not trace

    def test_normalize_restart_policy(self):
        assert normalize_restart_policy("preempt-migrate") == "preempt_migrate"
        assert normalize_restart_policy("CHECKPOINT") == "checkpoint"
        with pytest.raises(ValueError, match="unknown restart policy"):
            normalize_restart_policy("retry-harder")


# ---------------------------------------------------------------------------
# Cluster capacity state
# ---------------------------------------------------------------------------

class TestResourcePoolDisruptions:
    def test_slot_victim_maps_allocation_order(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        j1 = Job(job_id=1, submit_time=0, duration=10, nodes=3, memory_gb=6.0)
        j2 = Job(job_id=2, submit_time=0, duration=10, nodes=2, memory_gb=4.0)
        pool.allocate(j1)
        pool.allocate(j2)
        assert pool.slot_victim(0) == 1
        assert pool.slot_victim(2) == 1
        assert pool.slot_victim(3) == 2
        assert pool.slot_victim(4) == 2
        assert pool.slot_victim(5) is None  # idle
        assert pool.slot_victim(7) is None

    def test_mark_failed_shrinks_free_capacity(self):
        pool = ResourcePool(total_nodes=4, total_memory_gb=32.0)
        assert pool.mark_failed(0)
        assert pool.free_nodes == 3
        assert pool.free_memory_gb == pytest.approx(24.0)
        assert pool.offline_nodes == 1
        pool.mark_repaired(0)
        assert pool.free_nodes == 4
        assert pool.free_memory_gb == pytest.approx(32.0)
        assert pool.offline_nodes == 0

    def test_mark_failed_noop_when_everything_down(self):
        pool = ResourcePool(total_nodes=2, total_memory_gb=16.0)
        assert pool.mark_failed(0)
        assert pool.mark_failed(1)
        assert not pool.mark_failed(0)  # nothing left to take
        assert pool.offline_nodes == 2

    def test_drain_lifecycle(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        assert pool.drain_take_idle("drain:0")
        assert pool.drain_take_idle("drain:0")
        assert pool.free_nodes == 6
        pool.drain_release("drain:0")
        assert pool.free_nodes == 8
        assert pool.offline_nodes == 0

    def test_drain_victim_is_most_recent_allocation(self):
        pool = ResourcePool(total_nodes=8, total_memory_gb=64.0)
        j1 = Job(job_id=1, submit_time=0, duration=10, nodes=4, memory_gb=8.0)
        j2 = Job(job_id=2, submit_time=0, duration=10, nodes=4, memory_gb=8.0)
        pool.allocate(j1)
        pool.allocate(j2)
        assert pool.drain_victim() == 2
        pool.release(2)
        assert pool.drain_victim() == 1

    def test_reset_clears_disruption_state(self):
        pool = ResourcePool(total_nodes=4, total_memory_gb=32.0)
        pool.mark_failed(0)
        pool.drain_take_idle("drain:1")
        pool.reset()
        assert pool.free_nodes == 4
        assert pool.offline_nodes == 0


class TestNodeLevelClusterDisruptions:
    def test_victim_and_offline_excluded_from_placement(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        job = Job(job_id=1, submit_time=0, duration=10, nodes=2, memory_gb=4.0)
        cluster.allocate(job)
        owned = set(cluster.placement_of(1))
        victim_node = next(iter(owned))
        assert cluster.slot_victim(victim_node) == 1
        idle = next(i for i in range(4) if i not in owned)
        assert cluster.slot_victim(idle) is None
        cluster.release(1)
        assert cluster.mark_failed(victim_node)
        assert cluster.free_nodes == 3
        assert not cluster.mark_failed(victim_node)  # already down
        big = Job(job_id=2, submit_time=0, duration=10, nodes=4, memory_gb=8.0)
        assert not cluster.can_fit(big)
        cluster.mark_repaired(victim_node)
        assert cluster.can_fit(big)

    def test_mark_failed_requires_released_owner(self):
        from repro.sim.cluster import AllocationError

        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        job = Job(job_id=1, submit_time=0, duration=10, nodes=1, memory_gb=2.0)
        cluster.allocate(job)
        node = int(cluster.placement_of(1)[0])
        with pytest.raises(AllocationError, match="kill it first"):
            cluster.mark_failed(node)

    def test_drain_prefers_idle_top_nodes(self):
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        job = Job(job_id=1, submit_time=0, duration=10, nodes=1, memory_gb=2.0)
        cluster.allocate(job)  # takes node 0 (first-fit)
        assert cluster.drain_take_idle("drain:0")
        assert cluster.offline_nodes == 1
        # Highest-index idle node was taken, not the occupied node 0.
        assert cluster.slot_victim(0) == 1
        assert cluster.drain_victim() == 1
        cluster.drain_release("drain:0")
        assert cluster.offline_nodes == 0


# ---------------------------------------------------------------------------
# Simulator semantics
# ---------------------------------------------------------------------------

class TestFailureSemantics:
    def test_failure_kills_running_job_and_requeues(self):
        # One job on 2 nodes of a 4-node cluster; node 0 (its slot)
        # fails mid-run.
        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(failures=(NodeFailure(30.0, 0, 60.0),))
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert result.disrupted
        assert len(result.preemptions) == 1
        p = result.preemptions[0]
        assert p.job_id == 1 and p.reason == "failure"
        assert p.time == 30.0 and p.work_saved == 0.0
        assert p.work_lost == pytest.approx(30.0)
        assert p.restart_time == pytest.approx(30.0)  # refits on 3 nodes
        rec = result.record_for(1)
        # resubmit: full rerun from the kill.
        assert rec.start_time == pytest.approx(30.0)
        assert rec.end_time == pytest.approx(130.0)
        assert not rec.killed

    def test_failure_on_idle_node_only_shrinks_capacity(self):
        jobs = make_jobs([(1, 100.0, 50.0, 4, 8.0)])
        # Node fails before the job arrives; repair after it would
        # otherwise start — job must wait for repair (4 of 4 nodes).
        trace = DisruptionTrace(failures=(NodeFailure(10.0, 3, 200.0),))
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert not result.preemptions
        rec = result.record_for(1)
        assert rec.start_time == pytest.approx(200.0)

    def test_checkpoint_restart_resumes_from_interval(self):
        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(failures=(NodeFailure(50.0, 0, 55.0),))
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="checkpoint",
            checkpoint_interval=20.0,
        )
        p = result.preemptions[0]
        # 50s elapsed, checkpoints at 20/40 → 40 saved, 10 lost.
        assert p.work_saved == pytest.approx(40.0)
        assert p.work_lost == pytest.approx(10.0)
        rec = result.record_for(1)
        # Restarts immediately on remaining 3 nodes? Needs 2 nodes — yes.
        assert rec.start_time == pytest.approx(50.0)
        assert rec.end_time == pytest.approx(50.0 + 60.0)

    def test_checkpoint_policy_requires_interval(self):
        jobs = make_jobs([(1, 0.0, 10.0, 1, 1.0)])
        with pytest.raises(ValueError, match="checkpoint_interval"):
            HPCSimulator(
                jobs=jobs, scheduler=FCFSScheduler(),
                restart_policy="checkpoint",
            )

    def test_repeated_failures_accumulate_checkpoint_progress(self):
        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(
            failures=(
                NodeFailure(40.0, 0, 45.0),
                NodeFailure(80.0, 1, 85.0),
            )
        )
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="checkpoint",
            checkpoint_interval=10.0,
        )
        # Attempt 1: 0→40, saved 40. Attempt 2 starts at 40 (remaining
        # 60), killed at 80 → 40 elapsed, saved 40, remaining 20.
        assert len(result.preemptions) == 2
        rec = result.record_for(1)
        assert rec.end_time == pytest.approx(100.0)
        assert rec.end_time - rec.start_time == pytest.approx(20.0)

    def test_node_level_cluster_failures(self):
        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        cluster = NodeLevelCluster(node_count=4, memory_per_node_gb=8.0)
        trace = DisruptionTrace(failures=(NodeFailure(30.0, 0, 500.0),))
        result = simulate(
            jobs, FCFSScheduler(), cluster=cluster, disruptions=trace,
        )
        # First-fit placed job 1 on nodes {0, 1}; node 0 dies.
        assert len(result.preemptions) == 1
        assert result.record_for(1).end_time == pytest.approx(130.0)

    def test_walltime_kill_flag_not_confused_with_restart(self):
        # Checkpoint-restarted job whose final attempt is shorter than
        # its original duration must NOT be marked walltime-killed.
        jobs = [
            Job(job_id=1, submit_time=0.0, duration=100.0, nodes=2,
                memory_gb=4.0, walltime=150.0)
        ]
        trace = DisruptionTrace(failures=(NodeFailure(50.0, 0, 55.0),))
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="checkpoint", checkpoint_interval=25.0,
            enforce_walltime=True,
        )
        rec = result.record_for(1)
        assert not rec.killed


class TestDrainSemantics:
    def test_drain_takes_idle_nodes_first(self):
        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(
            drains=(DrainWindow(start=10.0, end=50.0, nodes=2),)
        )
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        # 2 idle nodes satisfy the drain; the running job survives.
        assert not result.preemptions
        assert result.record_for(1).end_time == pytest.approx(100.0)

    def test_drain_preempts_when_cluster_full(self):
        jobs = make_jobs(
            [(1, 0.0, 100.0, 2, 4.0), (2, 0.0, 100.0, 2, 4.0)]
        )
        trace = DisruptionTrace(
            drains=(DrainWindow(start=10.0, end=50.0, nodes=2),)
        )
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        # Most recently started job (2) is evicted, restarts at drain
        # end (job 1 still holds the other 2 nodes).
        assert len(result.preemptions) == 1
        p = result.preemptions[0]
        assert p.job_id == 2 and p.reason == "drain"
        assert p.restart_time == pytest.approx(50.0)

    def test_preempt_migrate_checkpoints_at_announcement(self):
        jobs = make_jobs(
            [(1, 0.0, 100.0, 2, 4.0), (2, 0.0, 100.0, 2, 4.0)]
        )
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=40.0, end=80.0, nodes=2, announce_time=25.0),
            )
        )
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="preempt_migrate",
        )
        p = result.preemptions[0]
        # No periodic interval, but the announcement at t=25 snapshots
        # progress: only 40-25=15s of work is lost.
        assert p.work_saved == pytest.approx(25.0)
        assert p.work_lost == pytest.approx(15.0)

    def test_upcoming_drains_visible_from_announcement(self):
        seen = {}

        class Spy(BaseScheduler):
            name = "spy"

            def decide(self, view):
                seen[view.now] = view.upcoming_drains
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs([(1, 0.0, 10.0, 1, 1.0), (2, 30.0, 10.0, 1, 1.0)])
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=100.0, end=200.0, nodes=2,
                            announce_time=20.0),
            )
        )
        simulate(
            jobs, Spy(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert seen[0.0] == ()  # before announcement
        assert len(seen[30.0]) == 1  # announced by then
        assert seen[30.0][0].start == 100.0


class TestPreemptAction:
    def test_voluntary_preempt_suspends_cleanly(self):
        class PreemptOnce(BaseScheduler):
            name = "preempt_once"

            def __init__(self):
                super().__init__()
                self.done = False

            def reset(self):
                super().reset()
                self.done = False

            def decide(self, view):
                if (
                    not self.done
                    and view.now >= 20.0
                    and any(r.job.job_id == 1 for r in view.running)
                ):
                    self.done = True
                    return PreemptJob(1)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0), (2, 20.0, 10.0, 1, 1.0)])
        result = simulate(
            jobs, PreemptOnce(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
        )
        preempts = [p for p in result.preemptions if p.reason == "preempt"]
        assert len(preempts) == 1
        p = preempts[0]
        assert p.work_lost == pytest.approx(0.0)  # clean suspend
        assert p.work_saved == pytest.approx(20.0)
        rec = result.record_for(1)
        #

        # Remaining 80s execute after the re-start.
        assert rec.end_time - rec.start_time == pytest.approx(80.0)
        # Even without a disruption trace the run is marked undisrupted
        # but the preemption is logged.
        assert not result.disrupted

    def test_announce_grants_decision_point_on_busy_cluster(self):
        """Queue empty, cluster fully busy, drain announced: the
        scheduler must still get a decision query so it can migrate
        work off the doomed nodes before the window starts."""

        class MigrateOnAnnounce(BaseScheduler):
            name = "migrate_on_announce"

            def __init__(self):
                super().__init__()
                self.migrated = set()

            def reset(self):
                super().reset()
                self.migrated = set()

            def decide(self, view):
                # Suspend (once) any running job that straddles an
                # announced drain the shrunken cluster cannot carry.
                for d in view.upcoming_drains:
                    if d.start <= view.now:
                        continue
                    for run in view.running:
                        job = run.job
                        if (
                            run.expected_end > d.start
                            and job.nodes > view.total_nodes - d.nodes
                            and job.job_id not in self.migrated
                        ):
                            self.migrated.add(job.job_id)
                            return PreemptJob(job.job_id)
                for job in view.queued:
                    if view.can_fit(job) and view.drain_safe(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs([(1, 0.0, 200.0, 3, 6.0)])
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=100.0, end=150.0, nodes=2,
                            announce_time=50.0),
            )
        )
        result = simulate(
            jobs, MigrateOnAnnounce(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="preempt_migrate",
        )
        # The policy reacted AT the announcement (t=50) — the queue was
        # empty then, so this requires the announce decision point —
        # and the clean suspend means zero work lost; the drain then
        # only takes idle nodes.
        assert [p.reason for p in result.preemptions] == ["preempt"]
        assert result.preemptions[0].time == pytest.approx(50.0)
        assert sum(p.work_lost for p in result.preemptions) == 0.0
        rec = result.record_for(1)
        # Restarted after the drain with its saved 50s of progress.
        assert rec.start_time == pytest.approx(150.0)
        assert rec.end_time == pytest.approx(300.0)

    def test_preempt_loop_still_trips_runaway_guard(self):
        """A scheduler that preempts everything it starts must exhaust
        the decision budget (voluntary kills do not extend it)."""
        from repro.sim.simulator import SimulationError

        class Thrasher(BaseScheduler):
            name = "thrasher"

            def decide(self, view):
                if view.running:
                    return PreemptJob(view.running[0].job.job_id)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        # Two jobs on a one-node cluster keep the queue non-empty, so
        # the thrash loop (start one, preempt it, repeat) never leaves
        # the decision phase.
        jobs = make_jobs(
            [(1, 0.0, 100.0, 1, 1.0), (2, 0.0, 100.0, 1, 1.0)]
        )
        with pytest.raises(SimulationError, match="decision budget"):
            simulate(
                jobs, Thrasher(),
                cluster=ResourcePool(total_nodes=1, total_memory_gb=8.0),
                disruptions=DisruptionTrace(
                    failures=(NodeFailure(1e6, 0, 1e6 + 1.0),)
                ),
            )

    def test_preempt_of_non_running_job_rejected(self):
        class BadPreempt(BaseScheduler):
            name = "bad_preempt"

            def __init__(self):
                super().__init__()
                self.tried = False

            def reset(self):
                super().reset()
                self.tried = False

            def decide(self, view):
                if not self.tried:
                    self.tried = True
                    return PreemptJob(99)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs([(1, 0.0, 10.0, 1, 1.0), (2, 0.0, 10.0, 1, 1.0)])
        result = simulate(jobs, BadPreempt())
        rejected = [d for d in result.decisions if not d.accepted]
        assert rejected
        assert rejected[0].violations[0].kind.value == "not_running"


class TestDecisionBudget:
    def test_default_budget_scales_with_disruption_churn(self):
        """A legitimate failure-heavy run needs far more decisions
        than 200·n + 1000: every kill forces a delay + restart. The
        default budget must scale with the trace instead of branding
        the scheduler as stuck (regression: found driving the CLI)."""
        jobs = make_jobs([(1, 0.0, 6000.0, 2, 4.0)])
        failures = tuple(
            NodeFailure(float(t), 0, float(t) + 1.0)
            for t in range(10, 10_010, 10)
        )
        result = simulate(
            jobs, FCFSScheduler(),
            cluster=ResourcePool(total_nodes=2, total_memory_gb=16.0),
            disruptions=DisruptionTrace(failures=failures),
            restart_policy="checkpoint", checkpoint_interval=5.0,
        )
        assert len(result.records) == 1
        # Enough churn that the legacy budget (1200) would have blown.
        assert len(result.decisions) > 1200

    def test_explicit_max_decisions_stays_hard(self):
        from repro.sim.simulator import SimulationError

        jobs = make_jobs([(1, 0.0, 6000.0, 2, 4.0)])
        failures = tuple(
            NodeFailure(float(t), 0, float(t) + 1.0)
            for t in range(10, 10_010, 10)
        )
        with pytest.raises(SimulationError, match="decision budget"):
            simulate(
                jobs, FCFSScheduler(),
                cluster=ResourcePool(total_nodes=2, total_memory_gb=16.0),
                disruptions=DisruptionTrace(failures=failures),
                restart_policy="checkpoint", checkpoint_interval=5.0,
                max_decisions=100,
            )


class TestStopReopens:
    def test_kill_after_stop_reopens_scheduling(self):
        """An emits_stop scheduler closes with Stop while a job still
        runs; a failure then requeues it — scheduling must re-open or
        the simulation would abort with 'stopped with jobs queued'."""

        class StoppingFirstFit(BaseScheduler):
            name = "stopping_first_fit"
            emits_stop = True

            def decide(self, view):
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                if view.all_jobs_scheduled:
                    from repro.sim.actions import Stop

                    return Stop
                return Delay

        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(failures=(NodeFailure(30.0, 0, 40.0),))
        result = simulate(
            jobs, StoppingFirstFit(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert len(result.records) == 1
        assert result.record_for(1).end_time > 100.0


class TestRecoveryAwareSchedulers:
    def test_easy_backfill_avoids_drain_straddle(self):
        # Head job's walltime spans the announced drain, and during the
        # drain the cluster (4-2=2 nodes) cannot hold it: EASY must
        # hold it back until the window passes.
        jobs = make_jobs([(1, 0.0, 100.0, 3, 6.0)])
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=50.0, end=120.0, nodes=2, announce_time=0.0),
            )
        )
        result = simulate(
            jobs, EasyBackfillScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert not result.preemptions
        rec = result.record_for(1)
        assert rec.start_time == pytest.approx(120.0)

    def test_easy_backfills_short_jobs_around_drain_blocked_head(self):
        jobs = make_jobs(
            [(1, 0.0, 100.0, 3, 6.0), (2, 0.0, 20.0, 1, 1.0)]
        )
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=50.0, end=120.0, nodes=2, announce_time=0.0),
            )
        )
        result = simulate(
            jobs, EasyBackfillScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        # The short job ran immediately even though the head waited.
        assert result.record_for(2).start_time == pytest.approx(0.0)
        assert result.record_for(1).start_time == pytest.approx(120.0)

    def test_easy_backfill_window_spans_to_drain_end_for_parked_head(self):
        # Head (3 nodes) is drain-parked until t=120. A 2-node/40s job
        # exceeds the head's leftovers (1 node) but finishes before the
        # head's drain-safe reservation — it must borrow the head's
        # nodes now instead of idling through the whole announce lead.
        jobs = make_jobs(
            [(1, 0.0, 100.0, 3, 6.0), (2, 0.0, 40.0, 2, 4.0)]
        )
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=50.0, end=120.0, nodes=2,
                            announce_time=0.0),
            )
        )
        result = simulate(
            jobs, EasyBackfillScheduler(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert result.record_for(2).start_time == pytest.approx(0.0)
        assert result.record_for(1).start_time == pytest.approx(120.0)
        assert not result.preemptions

    def test_drain_safe_accounts_for_overlapping_windows(self):
        # Two announced 60-node drains overlap in time; each alone
        # leaves room for a 90-node job on 160 nodes, but jointly they
        # do not. The guard must see the 120-node peak and hold the
        # job back until both windows pass.
        jobs = make_jobs([(1, 0.0, 300.0, 90, 90.0)])
        trace = DisruptionTrace(
            drains=(
                DrainWindow(start=100.0, end=500.0, nodes=60,
                            announce_time=0.0),
                DrainWindow(start=150.0, end=550.0, nodes=60,
                            announce_time=0.0),
            )
        )
        result = simulate(
            jobs, EasyBackfillScheduler(),
            cluster=ResourcePool(total_nodes=160, total_memory_gb=1280.0),
            disruptions=trace,
        )
        # No eviction: the job waited out the joint 120-node peak.
        # (It starts at the first drain's end: the second window is in
        # progress then and already carved out of free capacity, and
        # the remaining 100 nodes genuinely hold the job.)
        assert not result.preemptions
        assert result.record_for(1).start_time == pytest.approx(500.0)

    def test_view_remaining_runtimes_is_a_stable_snapshot(self):
        retained = []

        class Retainer(BaseScheduler):
            name = "retainer"

            def decide(self, view):
                retained.append(view)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs([(1, 0.0, 100.0, 2, 4.0)])
        trace = DisruptionTrace(
            failures=(
                NodeFailure(30.0, 0, 35.0),
                NodeFailure(60.0, 1, 65.0),
            )
        )
        simulate(
            jobs, Retainer(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
            restart_policy="checkpoint", checkpoint_interval=10.0,
        )
        # Views captured at different kills must disagree about the
        # job's remaining runtime — i.e. each kept its own snapshot
        # instead of aliasing the simulator's live dict.
        values = {
            v.remaining_runtimes.get(1) for v in retained
        }
        assert len(values) >= 2

    def test_annealer_survives_failures_and_finishes(self):
        jobs = make_jobs(
            [(i, 0.0, 50.0 + 10 * i, 2, 4.0) for i in range(1, 7)]
        )
        trace = DisruptionTrace(
            failures=(NodeFailure(60.0, 0, 90.0), NodeFailure(130.0, 2, 160.0))
        )
        result = simulate(
            jobs, AnnealingOptimizer(seed=0),
            cluster=ResourcePool(total_nodes=8, total_memory_gb=64.0),
            disruptions=trace,
            restart_policy="checkpoint", checkpoint_interval=25.0,
        )
        assert len(result.records) == 6
        result.verify_capacity()

    def test_annealer_full_width_job_waits_for_repair(self):
        # A job needing every node cannot pack while any node is down;
        # it must start only after the repair, not crash the packer.
        jobs = make_jobs(
            [(1, 0.0, 30.0, 4, 8.0), (2, 0.0, 20.0, 1, 1.0)]
        )
        trace = DisruptionTrace(failures=(NodeFailure(5.0, 3, 100.0),))
        result = simulate(
            jobs, AnnealingOptimizer(seed=0),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
            disruptions=trace,
        )
        assert len(result.records) == 2
        assert result.record_for(1).start_time >= 100.0


class TestRunningIndex:
    """The simulator-maintained completion-ordered index and the
    copy-on-write running snapshot (perf satellites) must be
    observationally identical to re-sorting/rebuilding per decision."""

    def test_engine_index_matches_stable_sort(self):
        order_checks = []

        class Checker(BaseScheduler):
            name = "checker"

            def decide(self, view):
                if view.running:
                    by_index = view.running_by_walltime_end()
                    by_sort = tuple(
                        sorted(
                            view.running,
                            key=lambda r: r.start_time + r.job.walltime,
                        )
                    )
                    order_checks.append(by_index == by_sort)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        from repro.workloads.generator import generate_workload

        jobs = generate_workload("heterogeneous_mix", 40, seed=0)
        trace = DisruptionSpec(mtbf=40_000.0, mttr=400.0, seed=2).build(
            n_nodes=256, horizon=40_000.0
        )
        simulate(jobs, Checker(), disruptions=trace)
        assert order_checks and all(order_checks)

    def test_running_snapshot_reused_until_running_changes(self):
        snapshots = []

        class Capture(BaseScheduler):
            name = "capture"

            def decide(self, view):
                snapshots.append(view.running)
                for job in view.queued:
                    if view.can_fit(job):
                        return StartJob(job.job_id)
                return Delay

        jobs = make_jobs(
            [(1, 0.0, 100.0, 3, 6.0)]
            + [(i, float(i), 50.0, 2, 4.0) for i in range(2, 6)]
        )
        simulate(
            jobs, Capture(),
            cluster=ResourcePool(total_nodes=4, total_memory_gb=32.0),
        )
        # Consecutive decisions with an unchanged running set must share
        # the identical tuple object (copy-on-write), and tuples always
        # reflect the true running set.
        shared = sum(
            1
            for a, b in zip(snapshots, snapshots[1:])
            if a is b and a
        )
        assert shared > 0

    def test_hand_built_view_falls_back_to_sorting(self):
        from repro.sim.simulator import RunningJob, SystemView

        j1 = Job(job_id=1, submit_time=0, duration=50, nodes=1,
                 memory_gb=1.0, walltime=80.0)
        j2 = Job(job_id=2, submit_time=0, duration=50, nodes=1,
                 memory_gb=1.0, walltime=10.0)
        view = SystemView(
            now=0.0,
            queued=(),
            running=(RunningJob(j1, 0.0), RunningJob(j2, 0.0)),
            completed_ids=(),
            free_nodes=2,
            free_memory_gb=14.0,
            total_nodes=4,
            total_memory_gb=16.0,
            pending_arrivals=0,
            next_arrival_time=None,
            next_completion_time=50.0,
        )
        ordered = view.running_by_walltime_end()
        assert [r.job.job_id for r in ordered] == [2, 1]
        # Cached: second call returns the same tuple.
        assert view.running_by_walltime_end() is ordered


class TestDisruptedRunsStayValid:
    @pytest.mark.parametrize(
        "scheduler_name",
        ["fcfs", "fcfs_backfill", "sjf", "first_fit", "ortools_like",
         "genetic"],
    )
    def test_hostile_regime_completes_all_jobs(self, scheduler_name):
        from repro.schedulers.registry import create_scheduler
        from repro.workloads.generator import generate_workload

        jobs = generate_workload("heterogeneous_mix", 30, seed=1)
        spec = DisruptionSpec(
            mtbf=30_000.0, mttr=500.0,
            drain_every=4_000.0, drain_duration=800.0, drain_nodes=64,
            drain_lead=1_000.0, drain_first=1_500.0,
        )
        trace = spec.build(n_nodes=256, horizon=30_000.0)
        assert trace
        result = simulate(
            jobs, create_scheduler(scheduler_name, seed=0),
            disruptions=trace,
            restart_policy="checkpoint", checkpoint_interval=300.0,
        )
        assert len(result.records) == 30
        result.verify_capacity()


class TestSpecValidation:
    """DisruptionSpec rejects bad values at construction time, so a
    malformed sweep cell fails in the CLI's friendly-error path and
    never inside a worker process."""

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"failure_model": "gamma"}, "unknown failure model"),
            ({"mtbf": 0.0}, "mtbf must be positive"),
            ({"mtbf": -10.0}, "mtbf must be positive"),
            ({"mttr": 0.0}, "mttr must be positive"),
            ({"weibull_shape": 0.0}, "weibull_shape must be positive"),
            ({"rack_mtbf": 0.0}, "rack_mtbf must be positive"),
            ({"rack_mtbf": 100.0, "correlation": 0.0},
             r"correlation must be in \(0, 1\]"),
            ({"rack_mtbf": 100.0, "correlation": 1.5},
             r"correlation must be in \(0, 1\]"),
            ({"correlation_level": "node"},
             "correlation_level must be 'rack' or 'switch'"),
            ({"drain_every": 100.0},
             "drain_every requires drain_nodes >= 1"),
            ({"drain_every": 0.0, "drain_nodes": 1},
             "drain_every must be positive"),
            ({"drain_every": 100.0, "drain_nodes": 1,
              "drain_duration": 0.0},
             "drain_duration must be positive"),
            ({"drain_every": 100.0, "drain_nodes": 1,
              "drain_lead": -1.0},
             "drain_lead must be non-negative"),
            ({"drain_every": 100.0, "drain_nodes": 1,
              "drain_first": -1.0},
             "drain_first must be non-negative"),
        ],
    )
    def test_bad_spec_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            DisruptionSpec(**kwargs)

    def test_unknown_preset_lists_available(self):
        from repro.sim.disruptions import get_disruption_preset

        with pytest.raises(KeyError, match="unknown disruption preset"):
            get_disruption_preset("not-a-preset")
        # The error enumerates what IS available.
        try:
            get_disruption_preset("not-a-preset")
        except KeyError as exc:
            for name in DISRUPTION_PRESETS:
                assert name in str(exc)
