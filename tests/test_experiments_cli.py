"""Tests for the repro-sched CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["fig2"], ["fig3"], ["fig4"], ["fig5"], ["fig6"], ["fig7"],
            ["fig8"], ["list"],
            ["run", "--scenario", "adversarial", "--scheduler", "fcfs"],
            ["matrix", "--scenarios", "adversarial", "--sizes", "10"],
            ["report", "--store", "runs.jsonl"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_run_walltime_flags_parse(self):
        args = build_parser().parse_args([
            "run", "--scenario", "adversarial", "--scheduler", "fcfs",
            "--enforce-walltime", "--max-decisions", "500",
        ])
        assert args.enforce_walltime is True
        assert args.max_decisions == 500

    def test_disruption_flags_parse(self):
        for cmd in (
            ["run", "--scenario", "drain_window", "--scheduler", "fcfs"],
            ["matrix", "--scenarios", "drain_window", "--sizes", "10"],
        ):
            args = build_parser().parse_args(cmd + [
                "--mtbf", "30000", "--mttr", "600",
                "--drain-every", "3600", "--drain-nodes", "32",
                "--restart-policy", "preempt-migrate",
                "--checkpoint-interval", "300",
                "--disruptions", "hostile",
            ])
            assert args.mtbf == 30000.0
            assert args.restart_policy == "preempt-migrate"
            assert args.checkpoint_interval == 300.0
            assert args.disruptions == "hostile"

    def test_bad_disruption_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "run", "--scenario", "drain_window", "--scheduler",
                "fcfs", "--disruptions", "apocalypse",
            ])

    def test_checkpoint_policy_without_interval_is_friendly_error(
        self, capsys
    ):
        rc = main([
            "run", "--scenario", "drain_window", "--scheduler", "fcfs",
            "--mtbf", "30000", "--restart-policy", "checkpoint",
        ])
        assert rc == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_anneal_window_below_two_is_friendly_error(self, capsys):
        rc = main([
            "run", "--scenario", "resource_sparse", "--scheduler",
            "ortools_like", "-n", "6", "--anneal-window", "1",
        ])
        assert rc == 2
        assert "--anneal-window" in capsys.readouterr().err

    def test_matrix_anneal_window_below_two_is_friendly_error(
        self, capsys
    ):
        rc = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--anneal-window", "0",
        ])
        assert rc == 2
        assert "--anneal-window" in capsys.readouterr().err

    def test_invalid_preset_override_is_friendly_error(self, capsys):
        rc = main([
            "matrix", "--scenarios", "drain_window", "--sizes", "8",
            "--schedulers", "fcfs", "--drain-every", "3600",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous_mix" in out
        assert "claude-3.7-sim" in out
        assert "drain_window" in out
        assert "Disruption presets:" in out
        assert "hostile" in out

    def test_run_with_disruptions(self, capsys):
        assert main([
            "run", "--scenario", "drain_window", "--scheduler",
            "fcfs_backfill", "-n", "15",
            "--mtbf", "20000", "--mttr", "400",
            "--restart-policy", "checkpoint",
            "--checkpoint-interval", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "disruptions [" in out
        assert "policy=checkpoint" in out
        assert "goodput_nh" in out

    def test_run_with_correlated_failures(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler",
            "fcfs_backfill", "-n", "15",
            "--rack-size", "32", "--racks-per-switch", "4",
            "--rack-mtbf", "8000", "--mttr", "1000",
            "--restart-policy", "checkpoint",
            "--checkpoint-interval", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "rack_mtbf=8000" in out
        assert "blast radius [rack32x4]" in out

    def test_racks_per_switch_requires_rack_size(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--racks-per-switch", "4",
        ]) == 2
        assert "--rack-size" in capsys.readouterr().err

    def test_correlation_without_rack_mtbf_is_friendly_error(self, capsys):
        assert main([
            "matrix", "--scenarios", "rack_storm", "--sizes", "10",
            "--correlation", "0.5",
        ]) == 2
        assert "--rack-mtbf" in capsys.readouterr().err

    def test_zero_racks_per_switch_is_friendly_error(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--rack-size", "32", "--racks-per-switch", "0",
        ]) == 2
        assert "racks_per_switch" in capsys.readouterr().err

    def test_bad_rack_size_is_friendly_error(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--rack-size", "1000",
        ]) == 2
        assert "rack_size" in capsys.readouterr().err

    def test_run_command(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler", "sjf",
            "-n", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resource_sparse" in out
        assert "sjf" in out

    def test_run_with_anneal_window(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler",
            "ortools_like", "-n", "8", "--anneal-window", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ortools_like@w4" in out

    def test_run_llm_prints_overhead(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse",
            "--scheduler", "claude-3.7-sim", "-n", "5",
        ])
        assert code == 0
        assert "LLM overhead" in capsys.readouterr().out

    def test_fig2_prints_traces(self, capsys):
        assert main(["fig2", "--n-jobs", "8"]) == 0
        out = capsys.readouterr().out
        assert "# Thought" in out
        assert "# Action" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "o4-mini-sim" in out
        assert "elapsed_s" in out

    def test_run_with_enforce_walltime(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler", "fcfs",
            "-n", "6", "--enforce-walltime", "--max-decisions", "5000",
        ])
        assert code == 0
        assert "resource_sparse" in capsys.readouterr().out

    def test_matrix_and_report(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--seeds", "0", "1",
            "--workers", "1", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "[4/4]" in text
        assert "normalized to FCFS" in text
        assert out.exists()

        # Resume over the same matrix: nothing left to execute.
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--seeds", "0", "1",
            "--workers", "2", "--out", str(out), "--resume",
        ])
        assert code == 0
        assert "resumed: 4 cells already" in capsys.readouterr().out

        code = main(["report", "--store", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "resource_sparse, 8 jobs, seed 0" in text
        assert "resource_sparse, 8 jobs, seed 1" in text

    def test_matrix_resume_requires_out(self, capsys):
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--resume",
        ])
        assert code == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_matrix_interrupt_reports_persisted_cells(
        self, capsys, tmp_path, monkeypatch
    ):
        out = tmp_path / "runs.jsonl"
        main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        capsys.readouterr()

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.experiments.cli.run_matrix_parallel", interrupted
        )
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--workers", "1",
            "--out", str(out), "--resume",
        ])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted — 1 cells persisted" in err
        assert "--resume" in err

    def test_matrix_report_scopes_to_requested_cells(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        main([
            "matrix", "--scenarios", "adversarial", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        capsys.readouterr()
        # Second sweep shares the store file; its report covers only
        # its own matrix, not the earlier adversarial cells.
        main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        text = capsys.readouterr().out
        assert "resource_sparse, 8 jobs" in text
        assert "adversarial" not in text

    def test_matrix_without_store(self, capsys):
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--workers", "1",
        ])
        assert code == 0
        assert "normalized to FCFS" in capsys.readouterr().out

    def test_report_missing_store(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "none.jsonl")])
        assert code == 1
        assert "no runs" in capsys.readouterr().err

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--scenario", "resource_sparse",
            "--a", "fcfs", "--b", "sjf", "-n", "6", "--seeds", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "paired" in out
        assert "makespan" in out


class TestFaultToleranceFlags:
    MATRIX = [
        "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
        "--schedulers", "fcfs", "--workers", "1",
    ]

    def test_fault_flags_parse_with_defaults(self):
        args = build_parser().parse_args(
            ["matrix", "--scenarios", "adversarial", "--sizes", "10"]
        )
        assert args.cell_timeout is None
        assert args.max_retries == 2
        assert args.retry_backoff is None
        assert args.on_cell_failure == "abort"

    def test_bad_on_cell_failure_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                self.MATRIX + ["--on-cell-failure", "explode"]
            )

    def test_nonpositive_cell_timeout_is_friendly_error(self, capsys):
        rc = main(self.MATRIX + ["--workers", "2", "--cell-timeout", "0"])
        assert rc == 2
        assert "--cell-timeout" in capsys.readouterr().err

    def test_cell_timeout_requires_pool_workers(self, capsys):
        rc = main(self.MATRIX + ["--cell-timeout", "5"])
        assert rc == 2
        assert "--workers >= 2" in capsys.readouterr().err

    def test_negative_max_retries_is_friendly_error(self, capsys):
        rc = main(self.MATRIX + ["--max-retries", "-1"])
        assert rc == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_negative_retry_backoff_is_friendly_error(self, capsys):
        rc = main(self.MATRIX + ["--retry-backoff", "-0.5"])
        assert rc == 2
        assert "--retry-backoff" in capsys.readouterr().err


class TestStoreDoctorCommand:
    def test_missing_store_exits_two(self, tmp_path, capsys):
        rc = main(["store", "doctor", str(tmp_path / "none.jsonl")])
        assert rc == 2
        assert "no store" in capsys.readouterr().err

    def test_healthy_store_exits_zero(self, tmp_path, capsys):
        store_path = tmp_path / "runs.jsonl"
        assert main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--workers", "1",
            "--out", str(store_path),
        ]) == 0
        capsys.readouterr()
        rc = main(["store", "doctor", str(store_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "healthy" in out

    def test_corrupt_store_dry_run_then_repair(self, tmp_path, capsys):
        from repro.experiments.store import RunStore

        store_path = tmp_path / "runs.jsonl"
        assert main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "sjf", "--workers", "1",
            "--out", str(store_path),
        ]) == 0
        with store_path.open("a") as fh:
            fh.write("garbage line\n")
        capsys.readouterr()

        rc = main(["store", "doctor", str(store_path), "--dry-run"])
        assert rc == 1
        assert "would move" in capsys.readouterr().out
        # Dry run left the corruption in place.
        with pytest.raises(ValueError):
            RunStore(store_path).load()

        rc = main(["store", "doctor", str(store_path)])
        assert rc == 1
        assert "moved 1 unparseable line(s)" in capsys.readouterr().out
        assert len(RunStore(store_path).load()) == 2
        quarantine = store_path.with_name("runs.jsonl.quarantine")
        assert quarantine.read_text() == "L3\tgarbage line\n"

        # A second doctor pass finds nothing left to fix.
        rc = main(["store", "doctor", str(store_path)])
        assert rc == 0


class TestFigureCommands:
    """fig3–fig8 handlers route args into the right figure builder and
    renderer. The figure functions themselves are exercised by
    test_experiments_figures.py; here they are stubbed so each CLI
    path stays cheap."""

    @pytest.mark.parametrize(
        "argv, fig_name, render_name",
        [
            (["fig3"], "figure3", "render_figure3"),
            (["fig4", "--sizes", "10", "20"], "figure4", "render_figure4"),
            (["fig5"], "figure5", "render_overhead_table"),
            (["fig6", "--sizes", "10"], "figure6", "render_overhead_table"),
            (["fig7", "--repeats", "2"], "figure7", "render_figure7"),
            (["fig8", "--trace-seed", "7"], "figure8", "render_figure8"),
        ],
    )
    def test_fig_routes_data_to_renderer(
        self, monkeypatch, capsys, argv, fig_name, render_name
    ):
        from repro.experiments import cli

        sentinel = object()
        seen = {}

        def fake_fig(**kwargs):
            seen["fig_kwargs"] = kwargs
            return sentinel

        def fake_render(data, **kwargs):
            assert data is sentinel
            seen["render_kwargs"] = kwargs
            return f"[{render_name} output]"

        monkeypatch.setattr(cli.figures, fig_name, fake_fig)
        monkeypatch.setattr(cli.report, render_name, fake_render)
        assert main(argv) == 0
        assert f"[{render_name} output]" in capsys.readouterr().out
        # Every handler forwards the workload seed.
        assert "workload_seed" in seen["fig_kwargs"] or (
            "trace_seed" in seen["fig_kwargs"]
        )

    def test_fig5_and_fig6_label_their_tables(self, monkeypatch, capsys):
        from repro.experiments import cli

        labels = []
        monkeypatch.setattr(
            cli.figures, "figure5", lambda **kw: {"f5": 1}
        )
        monkeypatch.setattr(
            cli.figures, "figure6", lambda **kw: {"f6": 1}
        )
        monkeypatch.setattr(
            cli.report,
            "render_overhead_table",
            lambda data, key_label, title: (
                labels.append((key_label, title)) or "table"
            ),
        )
        assert main(["fig5"]) == 0
        assert main(["fig6"]) == 0
        capsys.readouterr()
        assert labels[0][0] == "scenario"
        assert "Figure 5" in labels[0][1]
        assert labels[1][0] == "n_jobs"
        assert "Figure 6" in labels[1][1]


class TestDisruptionSpecFlags:
    """_build_disruption_spec folds every override flag into the spec."""

    def _spec(self, extra):
        from repro.experiments.cli import _build_disruption_spec

        args = build_parser().parse_args(
            ["matrix", "--scenarios", "adversarial", "--sizes", "10"]
            + extra
        )
        return _build_disruption_spec(args)

    def test_every_override_flag_lands_in_spec(self):
        spec = self._spec([
            "--mtbf", "5000", "--mttr", "600",
            "--failure-model", "weibull",
            "--drain-every", "4000", "--drain-nodes", "2",
            "--drain-duration", "1200", "--drain-lead", "300",
            "--drain-first", "100",
            "--rack-mtbf", "9000", "--correlation", "0.5",
            "--correlation-level", "switch",
            "--disruption-seed", "7",
        ])
        assert spec.mtbf == 5000
        assert spec.mttr == 600
        assert spec.failure_model == "weibull"
        assert spec.drain_every == 4000
        assert spec.drain_nodes == 2
        assert spec.drain_duration == 1200
        assert spec.drain_lead == 300
        assert spec.drain_first == 100
        assert spec.rack_mtbf == 9000
        assert spec.correlation == 0.5
        assert spec.correlation_level == "switch"
        assert spec.seed == 7

    def test_checkpoint_interval_must_be_positive(self):
        from repro.experiments.cli import DisruptionArgsError

        with pytest.raises(DisruptionArgsError, match="must be positive"):
            self._spec([
                "--restart-policy", "checkpoint",
                "--checkpoint-interval", "0",
            ])

    def test_invalid_override_reported_as_friendly_error(self):
        # The spec's own validation (mtbf > 0) surfaces as a
        # DisruptionArgsError, not a bare dataclasses traceback.
        from repro.experiments.cli import DisruptionArgsError

        with pytest.raises(DisruptionArgsError, match="mtbf must be positive"):
            self._spec(["--mtbf", "-5"])


class TestMatrixInterruptNoStore:
    def test_interrupt_without_out_reports_nothing_persisted(
        self, monkeypatch, capsys
    ):
        from repro.experiments import cli

        def boom(*args, **kwargs):
            raise KeyboardInterrupt("mid-sweep")

        monkeypatch.setattr(cli, "run_matrix_parallel", boom)
        rc = main([
            "matrix", "--scenarios", "adversarial", "--sizes", "10",
            "--schedulers", "fcfs",
        ])
        assert rc == 130
        err = capsys.readouterr().err
        assert "interrupted (mid-sweep)" in err
        assert "nothing persisted" in err


class TestBenchCommand:
    """The bench subcommand's control flow, with the (slow) bench
    machinery stubbed out."""

    @pytest.fixture()
    def bench_mod(self, monkeypatch):
        from repro.experiments import bench

        monkeypatch.setattr(
            bench, "run_bench", lambda **kw: {"meta": {"quick": True}}
        )
        monkeypatch.setattr(
            bench, "render_report", lambda rep: "BENCH TABLE"
        )
        return bench

    def test_bad_section_is_a_friendly_error(self, monkeypatch, capsys):
        from repro.experiments import bench

        def raise_value_error(**kwargs):
            raise ValueError("unknown bench section(s): nope")

        monkeypatch.setattr(bench, "run_bench", raise_value_error)
        assert main(["bench", "--sections", "nope"]) == 2
        assert "unknown bench section" in capsys.readouterr().err

    def test_json_report_is_written(
        self, bench_mod, monkeypatch, capsys, tmp_path
    ):
        written = {}
        monkeypatch.setattr(
            bench_mod,
            "write_report",
            lambda rep, path: written.update(path=path),
        )
        out_path = str(tmp_path / "bench.json")
        assert main(["bench", "--quick", "--json", out_path]) == 0
        captured = capsys.readouterr()
        assert "BENCH TABLE" in captured.out
        assert f"wrote {out_path}" in captured.err
        assert written["path"] == out_path

    def test_strict_baseline_regression_fails_with_annotations(
        self, bench_mod, monkeypatch, capsys
    ):
        class Reg:
            def describe(self):
                return "replan_ms: 10.0 -> 20.0 (+100%)"

        monkeypatch.setattr(bench_mod, "load_report", lambda path: {})
        monkeypatch.setattr(
            bench_mod,
            "compare_to_baseline",
            lambda rep, base, threshold, dimensionless_only: [Reg()],
        )
        monkeypatch.setenv("GITHUB_ACTIONS", "1")
        rc = main([
            "bench", "--quick", "--baseline", "BENCH.json", "--strict",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 metric(s) regressed" in out
        assert "ERROR: replan_ms" in out
        assert "::error title=bench regression::" in out

    def test_clean_baseline_comparison_passes(
        self, bench_mod, monkeypatch, capsys
    ):
        monkeypatch.setattr(bench_mod, "load_report", lambda path: {})
        monkeypatch.setattr(
            bench_mod,
            "compare_to_baseline",
            lambda rep, base, threshold, dimensionless_only: [],
        )
        rc = main(["bench", "--quick", "--baseline", "BENCH.json"])
        assert rc == 0
        assert "no regressions >25%" in capsys.readouterr().out
