"""Tests for the repro-sched CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["fig2"], ["fig3"], ["fig4"], ["fig5"], ["fig6"], ["fig7"],
            ["fig8"], ["list"],
            ["run", "--scenario", "adversarial", "--scheduler", "fcfs"],
            ["matrix", "--scenarios", "adversarial", "--sizes", "10"],
            ["report", "--store", "runs.jsonl"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_run_walltime_flags_parse(self):
        args = build_parser().parse_args([
            "run", "--scenario", "adversarial", "--scheduler", "fcfs",
            "--enforce-walltime", "--max-decisions", "500",
        ])
        assert args.enforce_walltime is True
        assert args.max_decisions == 500

    def test_disruption_flags_parse(self):
        for cmd in (
            ["run", "--scenario", "drain_window", "--scheduler", "fcfs"],
            ["matrix", "--scenarios", "drain_window", "--sizes", "10"],
        ):
            args = build_parser().parse_args(cmd + [
                "--mtbf", "30000", "--mttr", "600",
                "--drain-every", "3600", "--drain-nodes", "32",
                "--restart-policy", "preempt-migrate",
                "--checkpoint-interval", "300",
                "--disruptions", "hostile",
            ])
            assert args.mtbf == 30000.0
            assert args.restart_policy == "preempt-migrate"
            assert args.checkpoint_interval == 300.0
            assert args.disruptions == "hostile"

    def test_bad_disruption_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "run", "--scenario", "drain_window", "--scheduler",
                "fcfs", "--disruptions", "apocalypse",
            ])

    def test_checkpoint_policy_without_interval_is_friendly_error(
        self, capsys
    ):
        rc = main([
            "run", "--scenario", "drain_window", "--scheduler", "fcfs",
            "--mtbf", "30000", "--restart-policy", "checkpoint",
        ])
        assert rc == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_anneal_window_below_two_is_friendly_error(self, capsys):
        rc = main([
            "run", "--scenario", "resource_sparse", "--scheduler",
            "ortools_like", "-n", "6", "--anneal-window", "1",
        ])
        assert rc == 2
        assert "--anneal-window" in capsys.readouterr().err

    def test_matrix_anneal_window_below_two_is_friendly_error(
        self, capsys
    ):
        rc = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--anneal-window", "0",
        ])
        assert rc == 2
        assert "--anneal-window" in capsys.readouterr().err

    def test_invalid_preset_override_is_friendly_error(self, capsys):
        rc = main([
            "matrix", "--scenarios", "drain_window", "--sizes", "8",
            "--schedulers", "fcfs", "--drain-every", "3600",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous_mix" in out
        assert "claude-3.7-sim" in out
        assert "drain_window" in out
        assert "Disruption presets:" in out
        assert "hostile" in out

    def test_run_with_disruptions(self, capsys):
        assert main([
            "run", "--scenario", "drain_window", "--scheduler",
            "fcfs_backfill", "-n", "15",
            "--mtbf", "20000", "--mttr", "400",
            "--restart-policy", "checkpoint",
            "--checkpoint-interval", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "disruptions [" in out
        assert "policy=checkpoint" in out
        assert "goodput_nh" in out

    def test_run_with_correlated_failures(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler",
            "fcfs_backfill", "-n", "15",
            "--rack-size", "32", "--racks-per-switch", "4",
            "--rack-mtbf", "8000", "--mttr", "1000",
            "--restart-policy", "checkpoint",
            "--checkpoint-interval", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "rack_mtbf=8000" in out
        assert "blast radius [rack32x4]" in out

    def test_racks_per_switch_requires_rack_size(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--racks-per-switch", "4",
        ]) == 2
        assert "--rack-size" in capsys.readouterr().err

    def test_correlation_without_rack_mtbf_is_friendly_error(self, capsys):
        assert main([
            "matrix", "--scenarios", "rack_storm", "--sizes", "10",
            "--correlation", "0.5",
        ]) == 2
        assert "--rack-mtbf" in capsys.readouterr().err

    def test_zero_racks_per_switch_is_friendly_error(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--rack-size", "32", "--racks-per-switch", "0",
        ]) == 2
        assert "racks_per_switch" in capsys.readouterr().err

    def test_bad_rack_size_is_friendly_error(self, capsys):
        assert main([
            "run", "--scenario", "rack_storm", "--scheduler", "fcfs",
            "--rack-size", "1000",
        ]) == 2
        assert "rack_size" in capsys.readouterr().err

    def test_run_command(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler", "sjf",
            "-n", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resource_sparse" in out
        assert "sjf" in out

    def test_run_with_anneal_window(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler",
            "ortools_like", "-n", "8", "--anneal-window", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ortools_like@w4" in out

    def test_run_llm_prints_overhead(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse",
            "--scheduler", "claude-3.7-sim", "-n", "5",
        ])
        assert code == 0
        assert "LLM overhead" in capsys.readouterr().out

    def test_fig2_prints_traces(self, capsys):
        assert main(["fig2", "--n-jobs", "8"]) == 0
        out = capsys.readouterr().out
        assert "# Thought" in out
        assert "# Action" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "o4-mini-sim" in out
        assert "elapsed_s" in out

    def test_run_with_enforce_walltime(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler", "fcfs",
            "-n", "6", "--enforce-walltime", "--max-decisions", "5000",
        ])
        assert code == 0
        assert "resource_sparse" in capsys.readouterr().out

    def test_matrix_and_report(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--seeds", "0", "1",
            "--workers", "1", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "[4/4]" in text
        assert "normalized to FCFS" in text
        assert out.exists()

        # Resume over the same matrix: nothing left to execute.
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--seeds", "0", "1",
            "--workers", "2", "--out", str(out), "--resume",
        ])
        assert code == 0
        assert "resumed: 4 cells already" in capsys.readouterr().out

        code = main(["report", "--store", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "resource_sparse, 8 jobs, seed 0" in text
        assert "resource_sparse, 8 jobs, seed 1" in text

    def test_matrix_resume_requires_out(self, capsys):
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--resume",
        ])
        assert code == 2
        assert "--resume requires --out" in capsys.readouterr().err

    def test_matrix_interrupt_reports_persisted_cells(
        self, capsys, tmp_path, monkeypatch
    ):
        out = tmp_path / "runs.jsonl"
        main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        capsys.readouterr()

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            "repro.experiments.cli.run_matrix_parallel", interrupted
        )
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "sjf", "--workers", "1",
            "--out", str(out), "--resume",
        ])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted — 1 cells persisted" in err
        assert "--resume" in err

    def test_matrix_report_scopes_to_requested_cells(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        main([
            "matrix", "--scenarios", "adversarial", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        capsys.readouterr()
        # Second sweep shares the store file; its report covers only
        # its own matrix, not the earlier adversarial cells.
        main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "8",
            "--schedulers", "fcfs", "--workers", "1", "--out", str(out),
        ])
        text = capsys.readouterr().out
        assert "resource_sparse, 8 jobs" in text
        assert "adversarial" not in text

    def test_matrix_without_store(self, capsys):
        code = main([
            "matrix", "--scenarios", "resource_sparse", "--sizes", "6",
            "--schedulers", "fcfs", "--workers", "1",
        ])
        assert code == 0
        assert "normalized to FCFS" in capsys.readouterr().out

    def test_report_missing_store(self, tmp_path, capsys):
        code = main(["report", "--store", str(tmp_path / "none.jsonl")])
        assert code == 1
        assert "no runs" in capsys.readouterr().err

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--scenario", "resource_sparse",
            "--a", "fcfs", "--b", "sjf", "-n", "6", "--seeds", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "paired" in out
        assert "makespan" in out
