"""Tests for the repro-sched CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["fig2"], ["fig3"], ["fig4"], ["fig5"], ["fig6"], ["fig7"],
            ["fig8"], ["list"],
            ["run", "--scenario", "adversarial", "--scheduler", "fcfs"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous_mix" in out
        assert "claude-3.7-sim" in out

    def test_run_command(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse", "--scheduler", "sjf",
            "-n", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resource_sparse" in out
        assert "sjf" in out

    def test_run_llm_prints_overhead(self, capsys):
        code = main([
            "run", "--scenario", "resource_sparse",
            "--scheduler", "claude-3.7-sim", "-n", "5",
        ])
        assert code == 0
        assert "LLM overhead" in capsys.readouterr().out

    def test_fig2_prints_traces(self, capsys):
        assert main(["fig2", "--n-jobs", "8"]) == 0
        out = capsys.readouterr().out
        assert "# Thought" in out
        assert "# Action" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--sizes", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "o4-mini-sim" in out
        assert "elapsed_s" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--scenario", "resource_sparse",
            "--a", "fcfs", "--b", "sjf", "-n", "6", "--seeds", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "paired" in out
        assert "makespan" in out
