"""Tests for store migration: JSONL ↔ sharded, loss-free both ways."""

import json

import pytest

from repro.experiments import faultinject
from repro.experiments.faultinject import FaultPlan, FaultRule, install
from repro.experiments.store import RunStore, StoredRun
from repro.experiments.storage import (
    ORDER_NAME,
    ShardedStore,
    migrate_to_jsonl,
    migrate_to_sharded,
    shard_name,
    store_digest,
)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


def make_stored(**overrides) -> StoredRun:
    base = dict(
        scenario="adversarial",
        n_jobs=10,
        scheduler="fcfs",
        workload_seed=0,
        scheduler_seed=0,
        metrics={"makespan": 100.0},
        decision_summary={},
        overhead=None,
    )
    base.update(overrides)
    return StoredRun(**base)


def v1_line(n_jobs=10):
    """A minimal schema-v1 line (no disruption/topology columns)."""
    return json.dumps({
        "schema_version": 1,
        "scenario": "adversarial",
        "n_jobs": n_jobs,
        "scheduler": "fcfs",
        "workload_seed": 0,
        "scheduler_seed": 0,
        "metrics": {"makespan": 90.0},
    }, sort_keys=True)


def v2_line(n_jobs=20):
    """Schema v2: disruption columns present, no topology_sig."""
    return json.dumps({
        "schema_version": 2,
        "scenario": "resource_sparse",
        "n_jobs": n_jobs,
        "scheduler": "sjf",
        "workload_seed": 1,
        "scheduler_seed": 0,
        "arrival_mode": "scenario",
        "metrics": {"makespan": 80.0},
        "decision_summary": {},
        "overhead": None,
        "disruption": None,
        "disruption_sig": "none",
    }, sort_keys=True)


def write_mixed_archive(path):
    """A single-file archive mixing schema v1, v2 and v3 lines."""
    lines = [
        v1_line(10),
        v2_line(20),
        make_stored(n_jobs=30).to_json(),
        v1_line(40),
        make_stored(n_jobs=50, scheduler="sjf").to_json(),
    ]
    path.write_text("\n".join(lines) + "\n")
    return lines


class TestRoundTrip:
    def test_mixed_schema_byte_identical(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        original = src.read_bytes()

        report = migrate_to_sharded(
            src, tmp_path / "runs.store", n_shards=4
        )
        assert report.n_lines == 5
        assert report.direction == "jsonl->sharded"

        back = migrate_to_jsonl(
            tmp_path / "runs.store", tmp_path / "back.jsonl"
        )
        assert back.order_preserved
        assert (tmp_path / "back.jsonl").read_bytes() == original

    def test_load_identical(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        migrate_to_sharded(src, tmp_path / "runs.store", n_shards=4)
        migrate_to_jsonl(tmp_path / "runs.store", tmp_path / "back.jsonl")
        assert (
            RunStore(src).load()
            == RunStore(tmp_path / "back.jsonl").load()
        )
        # The sharded copy holds the same content (digest-identical).
        assert store_digest(RunStore(src)) == store_digest(
            ShardedStore(tmp_path / "runs.store")
        )

    def test_schema_versions_survive_verbatim(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        migrate_to_sharded(src, tmp_path / "runs.store", n_shards=2)
        versions = sorted(
            run.schema_version
            for run in ShardedStore(tmp_path / "runs.store").load()
        )
        assert versions == [1, 1, 2, 3, 3]

    def test_missing_final_newline_reconstructed(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        # Strip the final newline: still a complete, parseable tail.
        src.write_bytes(src.read_bytes()[:-1])
        original = src.read_bytes()
        migrate_to_sharded(src, tmp_path / "runs.store", n_shards=2)
        migrate_to_jsonl(tmp_path / "runs.store", tmp_path / "back.jsonl")
        assert (tmp_path / "back.jsonl").read_bytes() == original

    def test_fallback_without_order_sidecar(self, tmp_path):
        """Deleting the order sidecar degrades to shard-order
        concatenation: no longer byte-identical, still load-identical."""
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        migrate_to_sharded(src, tmp_path / "runs.store", n_shards=4)
        (tmp_path / "runs.store" / ORDER_NAME).unlink()
        report = migrate_to_jsonl(
            tmp_path / "runs.store", tmp_path / "back.jsonl"
        )
        assert not report.order_preserved
        assert sorted(
            RunStore(tmp_path / "back.jsonl").load(),
            key=lambda r: r.key,
        ) == sorted(RunStore(src).load(), key=lambda r: r.key)


class TestMigrationSafety:
    def test_refuses_interior_corruption(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        src.write_text("{garbage\n" + make_stored().to_json() + "\n")
        with pytest.raises(ValueError, match="doctor"):
            migrate_to_sharded(src, tmp_path / "runs.store")

    def test_drops_torn_tail(self, tmp_path):
        """A newline-less unparseable tail is the signature of a run
        killed mid-write; migration drops it exactly like load()."""
        src = tmp_path / "runs.jsonl"
        good = make_stored().to_json()
        src.write_text(good + "\n" + good[: len(good) // 2])
        report = migrate_to_sharded(src, tmp_path / "runs.store")
        assert report.n_lines == 1

    def test_refuses_existing_dest(self, tmp_path):
        src = tmp_path / "runs.jsonl"
        write_mixed_archive(src)
        dest = tmp_path / "runs.store"
        migrate_to_sharded(src, dest, n_shards=2)
        with pytest.raises(ValueError, match="exists"):
            migrate_to_sharded(src, dest, n_shards=2)
        with pytest.raises(ValueError, match="exists"):
            migrate_to_jsonl(dest, src)

    def test_missing_source(self, tmp_path):
        with pytest.raises(ValueError, match="no JSONL store"):
            migrate_to_sharded(
                tmp_path / "nope.jsonl", tmp_path / "runs.store"
            )


class TestChaosTornShardWrite:
    def test_torn_write_on_shard_recovers(self, tmp_path):
        """The chaos harness tears a shard append mid-write; the store
        stays loadable, doctor reports clean (torn tails are repaired,
        not quarantined), and the next append lands intact."""
        store = ShardedStore(tmp_path / "runs.store", n_shards=1)
        victim = make_stored(n_jobs=10)
        install(FaultPlan(rules=(
            FaultRule(kind="torn_write", match="adversarial|10|"),
        )))
        store.append(victim)
        install(None)

        shard = tmp_path / "runs.store" / shard_name(0)
        assert not shard.read_text().endswith("\n")  # genuinely torn
        fresh = ShardedStore(tmp_path / "runs.store")
        assert fresh.load() == []  # torn tail dropped, not fatal

        # The next append repairs the tail before writing.
        survivor = make_stored(n_jobs=11)
        fresh.append(survivor)
        assert fresh.load() == [survivor]
        assert fresh.doctor().clean

    def test_torn_shard_then_migrate(self, tmp_path):
        """Migrating a sharded store with a torn shard tail drops the
        torn line (like load()) instead of refusing."""
        store = ShardedStore(tmp_path / "runs.store", n_shards=2)
        keep = make_stored(n_jobs=12)
        store.append(keep)
        install(FaultPlan(rules=(
            FaultRule(kind="torn_write", match="adversarial|10|"),
        )))
        store.append(make_stored(n_jobs=10))
        install(None)
        report = migrate_to_jsonl(
            tmp_path / "runs.store", tmp_path / "out.jsonl"
        )
        assert report.n_lines == 1
        assert RunStore(tmp_path / "out.jsonl").load() == [keep]
